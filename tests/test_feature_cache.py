"""The content-addressed feature cache (``repro.features.cache``).

The cache key is a SHA-256 of the packed occupancy bits plus the model's
class/name/parameters, so correctness reduces to: any change to the
input changes the key (no stale hits possible), and the store survives
corruption by degrading to a miss.
"""

import numpy as np
import pytest

from repro.features.cache import (
    FeatureCache,
    cache_info,
    default_cache_root,
    feature_cache_key,
)
from repro.features.vector_set_model import VectorSetModel
from repro.voxel.grid import VoxelGrid


@pytest.fixture
def cache(tmp_path):
    return FeatureCache(root=tmp_path / "features")


@pytest.fixture
def model():
    return VectorSetModel(k=5)


class TestCacheKey:
    def test_deterministic(self, lshape_grid, model):
        assert feature_cache_key(lshape_grid, model) == feature_cache_key(
            lshape_grid, VectorSetModel(k=5)
        )

    def test_single_voxel_mutation_changes_key(self, lshape_grid, model):
        base = feature_cache_key(lshape_grid, model)
        occupancy = lshape_grid.occupancy.copy()
        occupancy[0, 0, 0] = not occupancy[0, 0, 0]
        assert feature_cache_key(VoxelGrid(occupancy), model) != base

    def test_model_parameter_changes_key(self, lshape_grid, model):
        base = feature_cache_key(lshape_grid, model)
        assert feature_cache_key(lshape_grid, VectorSetModel(k=6)) != base
        assert (
            feature_cache_key(lshape_grid, VectorSetModel(k=5, normalize=False))
            != base
        )

    def test_resolution_changes_key(self, model):
        small = VoxelGrid(np.ones((4, 4, 4), dtype=bool))
        padded = np.zeros((5, 5, 5), dtype=bool)
        padded[:4, :4, :4] = True
        # Different grids must never collide even when their packed bits
        # could share a prefix.
        assert feature_cache_key(small, model) != feature_cache_key(
            VoxelGrid(padded), model
        )


class TestFeatureCache:
    def test_roundtrip_and_counters(self, cache, lshape_grid, model):
        assert cache.get(lshape_grid, model) is None
        assert (cache.hits, cache.misses) == (0, 1)
        feature = model.extract(lshape_grid)
        cache.put(lshape_grid, model, feature)
        hit = cache.get(lshape_grid, model)
        assert np.array_equal(hit, feature)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_reads_as_miss_and_is_repaired(
        self, cache, lshape_grid, model
    ):
        feature = model.extract(lshape_grid)
        cache.put(lshape_grid, model, feature)
        path = cache.path_for(feature_cache_key(lshape_grid, model))
        path.write_bytes(b"not a npy file")
        assert cache.get(lshape_grid, model) is None
        cache.put(lshape_grid, model, feature)
        assert np.array_equal(cache.get(lshape_grid, model), feature)

    def test_disabled_cache_is_a_noop(self, tmp_path, lshape_grid, model):
        cache = FeatureCache(root=tmp_path / "features", enabled=False)
        cache.put(lshape_grid, model, model.extract(lshape_grid))
        assert cache.get(lshape_grid, model) is None
        assert (cache.hits, cache.misses) == (0, 0)
        assert not (tmp_path / "features").exists()

    def test_flush_stats_accumulates(self, cache, lshape_grid, model):
        cache.get(lshape_grid, model)
        cache.put(lshape_grid, model, model.extract(lshape_grid))
        cache.get(lshape_grid, model)
        cache.flush_stats()
        assert (cache.hits, cache.misses) == (0, 0)
        info = cache_info(cache.root)
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["entries"] == 1
        assert info["bytes"] > 0
        # A second flush from a fresh instance accumulates.
        other = FeatureCache(root=cache.root)
        other.get(lshape_grid, model)
        other.flush_stats()
        assert cache_info(cache.root)["hits"] == 2

    def test_respects_repro_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere" / "features"
        assert FeatureCache().root == tmp_path / "elsewhere" / "features"


class TestStatsRace:
    def test_concurrent_flushes_lose_no_increments(self, tmp_path):
        """Racing flushers each write their own delta file, so no
        read-modify-write window exists: totals are exact no matter the
        interleaving (the bug class this scheme replaces)."""
        import threading

        root = tmp_path / "features"
        n_threads, per_thread = 8, 5

        def flusher() -> None:
            for _ in range(per_thread):
                cache = FeatureCache(root=root)
                cache.hits = 1
                cache.misses = 2
                cache.flush_stats()

        threads = [threading.Thread(target=flusher) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = cache_info(root)
        assert info["hits"] == n_threads * per_thread
        assert info["misses"] == 2 * n_threads * per_thread

    def test_compaction_folds_deltas_and_stays_exact(self, tmp_path):
        from repro.features.cache import STATS_DELTA_DIR

        root = tmp_path / "features"
        for _ in range(4):
            cache = FeatureCache(root=root)
            cache.hits = 3
            cache.flush_stats()
        deltas = root / STATS_DELTA_DIR
        assert len(list(deltas.glob("*.json"))) == 4
        # First read compacts the deltas into stats.json...
        assert cache_info(root)["hits"] == 12
        assert list(deltas.glob("*.json")) == []
        # ...and repeated reads (plus new deltas) stay exact.
        assert cache_info(root)["hits"] == 12
        late = FeatureCache(root=root)
        late.misses = 1
        late.flush_stats()
        info = cache_info(root)
        assert info["hits"] == 12 and info["misses"] == 1

    def test_reader_excludes_deltas_already_folded(self, tmp_path):
        """A reader racing the compactor must not double-count a delta
        that stats.json has folded but not yet deleted."""
        import json

        from repro.features.cache import STATS_DELTA_DIR, _read_stats

        root = tmp_path / "features"
        cache = FeatureCache(root=root)
        cache.hits = 5
        cache.flush_stats()
        delta_name = next((root / STATS_DELTA_DIR).glob("*.json")).name
        # Simulate the compactor's window: stats.json already counts the
        # delta (and says so), the delta file still exists on disk.
        (root / "stats.json").write_text(
            json.dumps({"hits": 5, "misses": 0, "folded": [delta_name]})
        )
        totals = _read_stats(root)
        assert totals == {"hits": 5, "misses": 0}

    def test_stale_compaction_lock_is_broken(self, tmp_path):
        import os

        root = tmp_path / "features"
        cache = FeatureCache(root=root)
        cache.hits = 2
        cache.flush_stats()
        root.mkdir(parents=True, exist_ok=True)
        lock = root / "stats.lock"
        lock.touch()
        ancient = 10_000
        os.utime(lock, (ancient, ancient))
        # A lock from a crashed process must not wedge reads forever.
        assert cache_info(root)["hits"] == 2
        assert not lock.exists()


class TestExtractManyIntegration:
    def test_second_pass_is_all_hits(self, cache, model, lshape_grid, tire_grid):
        grids = [lshape_grid, tire_grid]
        first = model.extract_many(grids, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = model.extract_many(grids, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        for got, expected in zip(second, first):
            assert np.array_equal(got, expected)

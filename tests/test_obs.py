"""The unified observability layer (``repro.obs``).

Covers the three invariants the layer is built on: disabled means
no-op (null instruments, empty registry), counter merging is exact
across snapshots and worker processes, and every span that opens in a
trace closes — plus the end-to-end guarantee that the telemetry the
query engine emits agrees *exactly* with the ``QueryStats``/``IOCost``
objects it returns.
"""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
    capture_deltas,
)
from repro.obs.report import (
    load_metrics,
    render_report,
    validate_counters,
    validate_trace,
)
from repro.obs.spans import NULL_SPAN, span


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with a pristine, disabled obs layer."""
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    yield
    obs.close_sink()
    obs.registry().reset()
    obs.disable()


@pytest.fixture
def enabled(tmp_path):
    """Obs enabled with a trace sink; yields the trace path."""
    trace = tmp_path / "trace.jsonl"
    obs.enable()
    obs.configure_sink(trace)
    yield trace
    obs.close_sink()


class TestRegistry:
    def test_disabled_returns_null_instruments(self):
        reg = obs.registry()
        assert reg.counter("x") is NULL_COUNTER
        assert reg.gauge("x") is NULL_GAUGE
        assert reg.histogram("x") is NULL_HISTOGRAM
        reg.counter("x").inc()
        reg.gauge("x").set(3.0)
        reg.histogram("x").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_instruments_record_when_enabled(self):
        obs.enable()
        obs.counter("a").inc()
        obs.counter("a").inc(4)
        obs.gauge("g").set(2.5)
        obs.histogram("h").observe(1.0)
        obs.histogram("h").observe(3.0)
        snap = obs.registry().snapshot()
        assert snap["counters"]["a"] == 5
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["sum"] == 4.0

    def test_count_many_folds_flat_mappings(self):
        obs.enable()
        obs.registry().count_many("q.", {"a": 2, "b": 3, "skip": "str"})
        obs.registry().count_many("q.", {"a": 1})
        snap = obs.registry().snapshot()
        assert snap["counters"] == {"q.a": 3, "q.b": 3}

    def test_merge_sums_counters_exactly(self):
        one = MetricsRegistry(enabled=True)
        two = MetricsRegistry(enabled=True)
        for reg, amount in ((one, 7), (two, 11)):
            reg.counter("n").inc(amount)
            for value in range(amount):
                reg.histogram("h").observe(float(value))
        one.merge(two.snapshot())
        assert one.counter("n").value == 18
        merged = one.histogram("h")
        assert merged.count == 18
        assert merged.total == sum(range(7)) + sum(range(11))

    def test_histogram_reservoir_bounded_and_deterministic(self):
        def fill():
            histogram = Histogram(max_samples=64)
            for value in range(10_000):
                histogram.observe(float(value))
            return histogram

        a, b = fill(), fill()
        assert a.count == 10_000
        assert a.total == sum(range(10_000))
        assert a.min == 0.0 and a.max == 9999.0
        assert len(a.samples) <= 64
        # No randomness anywhere: identical runs, identical snapshots.
        assert a.as_dict() == b.as_dict()
        # The stride-sampled quantile stays a sane estimate.
        assert 3000 < a.quantile(0.5) < 7000

    def test_histogram_empty_edge_cases(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.as_dict()["min"] is None

    def test_capture_deltas_isolates_and_snapshots(self):
        obs.enable()
        obs.counter("outer").inc(5)
        with capture_deltas() as holder:
            obs.counter("inner").inc(3)
        # The capture saw only what happened inside the block...
        assert holder.snapshot["counters"] == {"inner": 3}
        # ...and the registry is back to its pre-capture state (reset:
        # worker registries never leak between pool tasks).
        assert obs.registry().snapshot()["counters"] == {}

    def test_event_buffer_caps_and_counts_drops(self):
        from repro.obs.metrics import MAX_BUFFERED_EVENTS

        obs.enable()
        reg = obs.registry()
        for index in range(MAX_BUFFERED_EVENTS + 10):
            reg.buffer_event({"event": "x", "i": index})
        assert len(reg.events) == MAX_BUFFERED_EVENTS
        assert reg.dropped_events == 10


class TestSpans:
    def test_disabled_span_is_null(self):
        with span("anything") as record:
            assert record is NULL_SPAN
        assert obs.registry().snapshot()["histograms"] == {}

    def test_force_measures_without_recording(self):
        with span("timed", force=True) as record:
            pass
        assert record is not NULL_SPAN
        assert record.seconds >= 0.0
        # force never touches the registry while obs is disabled.
        assert obs.registry().snapshot()["histograms"] == {}

    def test_nested_spans_produce_wellformed_trace(self, enabled):
        with span("outer", depth=0):
            with span("inner", depth=1) as inner:
                inner.set(items=3)
        obs.close_sink()
        check = validate_trace(enabled)
        assert check.ok, check.errors
        assert check.spans == 2
        records = [json.loads(line) for line in enabled.read_text().splitlines()]
        starts = {r["name"]: r for r in records if r["event"] == "span_start"}
        ends = {r["name"]: r for r in records if r["event"] == "span_end"}
        assert starts["inner"]["parent"] == starts["outer"]["id"]
        assert ends["inner"]["attrs"] == {"depth": 1, "items": 3}
        assert ends["outer"]["seconds"] >= ends["inner"]["seconds"]

    def test_span_feeds_latency_histogram(self, enabled):
        for _ in range(3):
            with span("work"):
                pass
        histogram = obs.registry().histogram("span.work.seconds")
        assert histogram.count == 3

    def test_span_closes_on_exception(self, enabled):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        obs.close_sink()
        check = validate_trace(enabled)
        assert check.ok, check.errors

    def test_name_is_a_free_attribute_key(self, enabled):
        with span("labeled", name="the-object"):
            pass
        obs.close_sink()
        records = [json.loads(line) for line in enabled.read_text().splitlines()]
        end = next(r for r in records if r["event"] == "span_end")
        assert end["attrs"] == {"name": "the-object"}


class TestEvents:
    def test_emit_is_noop_while_disabled(self):
        obs.emit("query", n=1)
        assert obs.registry().events == []

    def test_emit_buffers_without_sink(self):
        obs.enable()
        obs.emit("query", n=1)
        assert obs.registry().events[0]["event"] == "query"
        assert "ts" in obs.registry().events[0]

    def test_emit_writes_to_sink(self, enabled):
        obs.emit("ingest", ok=3)
        obs.close_sink()
        record = json.loads(enabled.read_text().splitlines()[0])
        assert record["event"] == "ingest" and record["ok"] == 3

    def test_merge_worker_snapshot_redispatches_events(self, enabled):
        snap = {
            "counters": {"extract.objects": 2},
            "events": [{"event": "worker", "ts": 0.0}],
        }
        obs.merge_worker_snapshot(snap)
        assert obs.registry().counter("extract.objects").value == 2
        obs.close_sink()
        assert '"worker"' in enabled.read_text()


class TestTraceValidation:
    def test_unclosed_span_detected(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            json.dumps({"event": "span_start", "id": "1-1", "name": "lost"}) + "\n"
        )
        check = validate_trace(trace)
        assert not check.ok
        assert "never closed" in check.errors[0]

    def test_bad_json_and_missing_event_detected(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text("not json\n" + json.dumps({"no": "event"}) + "\n")
        check = validate_trace(trace)
        assert len(check.errors) == 2

    def test_orphan_span_end_detected(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text(
            json.dumps(
                {"event": "span_end", "id": "9-9", "name": "ghost", "seconds": 0.1}
            )
            + "\n"
        )
        check = validate_trace(trace)
        assert any("without a matching span_start" in e for e in check.errors)

    def test_negative_counter_detected(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("broken").inc(-2)
        errors = validate_counters(reg)
        assert errors and "broken" in errors[0]


class TestReport:
    def test_load_metrics_merges_files_exactly(self, tmp_path):
        paths = []
        for index, amount in enumerate((3, 4)):
            reg = MetricsRegistry(enabled=True)
            reg.counter("total").inc(amount)
            path = tmp_path / f"m{index}.json"
            path.write_text(json.dumps(reg.snapshot(include_events=False)))
            paths.append(path)
        merged = load_metrics(paths)
        assert merged.counter("total").value == 7

    def test_load_metrics_rejects_garbage(self, tmp_path):
        from repro.exceptions import ReproError

        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ReproError):
            load_metrics([bad])
        with pytest.raises(ReproError):
            load_metrics([tmp_path / "missing.json"])

    def test_render_report_sections(self, tmp_path):
        reg = MetricsRegistry(enabled=True)
        reg.counter("query.count").inc(2)
        reg.histogram("span.knn.seconds").observe(0.5)
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        text = render_report(reg, [validate_trace(trace)])
        assert "query.count" in text
        assert "span.knn.seconds" in text
        assert "OK" in text


class TestStatsProtocol:
    def test_query_stats_protocol(self):
        from repro.core.queries import QueryStats

        a = QueryStats(10, 4, 6, 1)
        b = QueryStats(5, 2, 3, 0)
        assert a.as_dict() == {
            "candidates_ranked": 10,
            "exact_computations": 4,
            "pruned": 6,
            "extra_refinements": 1,
        }
        a.merge(b)
        assert (a.candidates_ranked, a.exact_computations) == (15, 6)
        assert "refined 6/15" in str(a)

    def test_iocost_protocol(self):
        from repro.index.pages import IOCost

        a = IOCost(page_accesses=2, bytes_read=100)
        b = IOCost(page_accesses=1, bytes_read=50)
        assert a.as_dict() == {"page_accesses": 2, "bytes_read": 100}
        a.merge(b)
        assert a.as_dict() == {"page_accesses": 3, "bytes_read": 150}
        assert "3 page accesses" in str(a)


class TestEngineTelemetry:
    @pytest.fixture
    def sets(self, rng):
        return [
            rng.normal(size=(int(rng.integers(1, 6)), 6)) for _ in range(30)
        ]

    def test_query_event_agrees_exactly_with_stats(self, enabled, sets):
        from repro.core.queries import FilterRefineEngine

        engine = FilterRefineEngine(sets, capacity=5)
        _, stats = engine.knn_query(sets[0], 5)
        obs.close_sink()
        events = [json.loads(line) for line in enabled.read_text().splitlines()]
        queries = [e for e in events if e["event"] == "query"]
        assert len(queries) == 1
        event = queries[0]
        for key, value in stats.as_dict().items():
            assert event[key] == value
        assert event["selectivity"] == stats.exact_computations / len(sets)
        assert event["kind"] == "knn" and event["k"] == 5
        # The registry counters carry the same totals.
        reg = obs.registry()
        assert reg.counter("query.exact_computations").value == stats.exact_computations
        assert reg.counter("query.count").value == 1

    def test_knn_many_counts_every_query(self, enabled, sets):
        from repro.core.queries import FilterRefineEngine

        engine = FilterRefineEngine(sets, capacity=5)
        results = engine.knn_query_many(sets[:4], 3)
        assert obs.registry().counter("query.count").value == 4
        total = sum(stats.exact_computations for _, stats in results)
        assert obs.registry().counter("query.exact_computations").value == total
        obs.close_sink()
        check = validate_trace(enabled)
        assert check.ok, check.errors
        assert check.by_event["query"] == 4

    def test_range_and_scan_queries_traced(self, enabled, sets):
        from repro.core.queries import FilterRefineEngine

        engine = FilterRefineEngine(sets, capacity=5)
        engine.range_query(sets[0], 2.0)
        engine.knn_sequential(sets[1], 3)
        obs.close_sink()
        events = [json.loads(line) for line in enabled.read_text().splitlines()]
        kinds = [e["kind"] for e in events if e["event"] == "query"]
        assert kinds == ["range", "scan"]
        names = {e["name"] for e in events if e["event"] == "span_start"}
        assert {"query.range", "query.scan"} <= names

    def test_disabled_engine_records_nothing(self, sets):
        from repro.core.queries import FilterRefineEngine

        engine = FilterRefineEngine(sets, capacity=5)
        engine.knn_query(sets[0], 3)
        snap = obs.registry().snapshot()
        assert snap["counters"] == {} and snap["events"] == []


class TestPageTelemetry:
    def test_counters_match_iocost_exactly(self):
        from repro.index.pages import PageManager

        obs.enable()
        pages = PageManager(page_size=256)
        small = pages.allocate(100)
        large = pages.allocate(600)  # spans 3 pages
        pages.read(small)
        pages.read(large)
        pages.read_bytes(1000)
        reg = obs.registry()
        assert reg.counter("io.page_accesses").value == pages.cost.page_accesses
        assert reg.counter("io.bytes_read").value == pages.cost.bytes_read
        assert pages.cost.page_accesses == 1 + 3 + 4
        assert pages.cost.bytes_read == 100 + 600 + 1000


class TestExtractionTelemetry:
    def test_extraction_counters_and_span(self, enabled, lshape_grid):
        from repro.features.cover_sequence import extract_cover_sequence

        sequence = extract_cover_sequence(lshape_grid, 3)
        reg = obs.registry()
        assert reg.counter("extract.objects").value == 1
        assert reg.counter("extract.iterations").value >= len(sequence.covers)
        assert reg.histogram("extract.covers").count == 1
        assert reg.histogram("span.extract.seconds").count == 1

    def test_cache_counters(self, tmp_path, lshape_grid):
        from repro.features.cache import FeatureCache
        from repro.features.vector_set_model import VectorSetModel

        obs.enable()
        cache = FeatureCache(root=tmp_path / "features")
        model = VectorSetModel(k=3)
        cache.get(lshape_grid, model)
        cache.put(lshape_grid, model, model.extract(lshape_grid))
        cache.get(lshape_grid, model)
        reg = obs.registry()
        assert reg.counter("cache.misses").value == 1
        assert reg.counter("cache.hits").value == 1


class TestOpticsTelemetry:
    def test_progress_and_row_cache_counters(self, enabled, rng):
        from repro.clustering.optics import distance_rows_from_function, optics

        points = rng.normal(size=(25, 3))
        rows = distance_rows_from_function(
            list(points),
            lambda a, b: float(np.linalg.norm(a - b)),
            max_cache_rows=4,
        )
        ordering = optics(len(points), rows, min_pts=3)
        assert len(ordering) == 25
        reg = obs.registry()
        assert reg.counter("optics.processed").value == 25
        # OPTICS requests each row exactly once -> all misses.
        assert reg.counter("optics.row_cache_misses").value == 25
        obs.close_sink()
        events = [json.loads(line) for line in enabled.read_text().splitlines()]
        progress = [e for e in events if e["event"] == "optics_progress"]
        assert progress and progress[-1]["processed"] == 25

    def test_row_cache_hit_counter(self):
        from repro.clustering.optics import distance_rows_from_function

        obs.enable()
        rows = distance_rows_from_function(
            [0.0, 1.0], lambda a, b: abs(a - b), max_cache_rows=2
        )
        rows(0)
        rows(0)
        assert obs.registry().counter("optics.row_cache_hits").value == 1
        assert obs.registry().counter("optics.row_cache_misses").value == 1


class TestWorkerParity:
    def test_parallel_ingest_matches_serial_counters(self):
        """Satellite guarantee: ``--jobs 2`` reports the same counter
        totals as a serial run — batch counters are recorded once in the
        parent, per-object spans merge back from worker snapshots."""
        from repro.datasets.parts import make_part
        from repro.pipeline import Pipeline

        rng = np.random.default_rng(7)
        parts = [make_part(family, rng) for family in ("door", "bracket", "tire")]
        pipeline = Pipeline(resolution=10)

        def run(n_jobs):
            obs.registry().reset()
            obs.enable()
            pipeline.process_parts(parts, n_jobs=n_jobs)
            snap = obs.registry().snapshot(include_events=False)
            obs.registry().reset()
            obs.disable()
            return snap

        serial, parallel = run(None), run(2)
        assert serial["counters"] == parallel["counters"]
        assert serial["counters"]["ingest.objects_ok"] == 3
        # Per-object spans happened in workers but the histogram count
        # (one observation per object) merges back exactly.
        assert (
            serial["histograms"]["span.ingest.object.seconds"]["count"]
            == parallel["histograms"]["span.ingest.object.seconds"]["count"]
            == 3
        )

    def test_worker_spans_reach_parent_sink_exactly_once(self, enabled):
        """Forked workers inherit the sink object but must never write
        through its shared file descriptor: their span events buffer in
        the worker registry and re-dispatch in the parent — so the trace
        has exactly one start/end pair per object, no clobbered or
        duplicated lines."""
        from repro.datasets.parts import make_part
        from repro.pipeline import Pipeline

        rng = np.random.default_rng(11)
        parts = [make_part(family, rng) for family in ("door", "bracket", "tire")]
        Pipeline(resolution=10).process_parts(parts, n_jobs=2)
        obs.close_sink()
        check = validate_trace(enabled)
        assert check.ok, check.errors
        records = [json.loads(line) for line in enabled.read_text().splitlines()]
        starts = [
            r["name"] for r in records if r["event"] == "span_start"
        ]
        assert starts.count("ingest.object") == 3
        assert starts.count("ingest.process_parts") == 1

    def test_pool_map_skips_capture_when_disabled(self):
        from repro.parallel import pool_map

        assert obs.enabled() is False
        results = pool_map(_double, [1, 2, 3], 2)
        assert results == [2, 4, 6]
        assert obs.registry().snapshot()["counters"] == {}


class TestSinkModes:
    """Satellite fix: a second run sharing ``--trace FILE`` must not
    clobber the first run's records (the pre-PR-9 ``"w"`` open did)."""

    def test_append_mode_survives_two_runs(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.enable()
        for note in ("first", "second"):
            obs.configure_sink(trace)  # default mode: append
            obs.emit("run", note=note)
            obs.close_sink()
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert [r["note"] for r in records] == ["first", "second"]

    def test_truncate_mode_starts_over(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.enable()
        for note in ("first", "second"):
            obs.configure_sink(trace, mode="truncate")
            obs.emit("run", note=note)
            obs.close_sink()
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert [r["note"] for r in records] == ["second"]

    def test_rotate_mode_keeps_previous_file(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        obs.enable()
        for note in ("first", "second", "third"):
            obs.configure_sink(trace, mode="rotate")
            obs.emit("run", note=note)
            obs.close_sink()
        current = [json.loads(line) for line in trace.read_text().splitlines()]
        rotated = [
            json.loads(line)
            for line in (tmp_path / "trace.jsonl.1").read_text().splitlines()
        ]
        # Only one rotation generation is kept: .1 holds the previous
        # run, older runs are gone.
        assert [r["note"] for r in current] == ["third"]
        assert [r["note"] for r in rotated] == ["second"]

    def test_unknown_mode_rejected(self, tmp_path):
        from repro.obs.events import EventSink

        with pytest.raises(ValueError, match="sink mode"):
            EventSink(tmp_path / "trace.jsonl", mode="overwrite")


class TestSpawnParity:
    def test_spawn_workers_report_identical_telemetry(self, enabled):
        """Worker metric capture must not depend on fork inheritance:
        under the spawn start method the worker process starts with a
        pristine, *disabled* obs layer, and ``capture_deltas`` alone
        must produce the same counters/spans/events a serial run does."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.obs.tracectx import new_trace_id

        tasks = [1, 2, 3]

        def serial_run():
            obs.registry().reset()
            for task in tasks:
                _spawn_work(task)
            snap = obs.registry().snapshot(include_events=False)
            obs.registry().reset()
            return snap

        serial = serial_run()

        trace_id = new_trace_id()
        payloads = [
            (True, (trace_id, None), _spawn_work, task) for task in tasks
        ]
        from repro.parallel import _captured_task

        with ProcessPoolExecutor(
            max_workers=2, mp_context=multiprocessing.get_context("spawn")
        ) as pool:
            for result, snapshot in pool.map(_captured_task, payloads):
                assert snapshot is not None
                obs.merge_worker_snapshot(snapshot)
        spawned = obs.registry().snapshot(include_events=False)

        assert spawned["counters"] == serial["counters"]
        assert (
            spawned["histograms"]["span.spawn.work.seconds"]["count"]
            == serial["histograms"]["span.spawn.work.seconds"]["count"]
            == 3
        )
        # Worker events re-dispatched into the parent sink, each
        # stamped with the propagated trace id.
        obs.close_sink()
        records = [json.loads(line) for line in enabled.read_text().splitlines()]
        # (The serial baseline wrote untraced markers into the same
        # sink; the worker ones are exactly the traced ones.)
        markers = [
            r
            for r in records
            if r["event"] == "spawn_marker" and r.get("trace") == trace_id
        ]
        assert len(markers) == 3


class TestReportQuantiles:
    def test_histogram_lines_carry_tails_and_caveat(self):
        from repro.obs.report import render_report

        reg = MetricsRegistry(enabled=True)
        for value in range(100):
            reg.histogram("span.knn.seconds").observe(float(value) / 100)
        text = render_report(reg, [])
        assert "reservoir estimates" in text
        line = next(l for l in text.splitlines() if "span.knn.seconds" in l)
        assert "p95=" in line and "p99=" in line and "samples=" in line


def _double(x):
    return 2 * x


def _spawn_work(task):
    """Spawn-pool work unit (module-level so it pickles): one counter
    bump, one span, one event per task."""
    obs.counter("spawn.tasks").inc()
    with span("spawn.work", task=task):
        obs.emit("spawn_marker", task=task)
    return task

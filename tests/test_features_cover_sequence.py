"""Tests for greedy cover-sequence extraction and max-sum box search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import FeatureError
from repro.features.cover_sequence import (
    Cover,
    CoverSequenceModel,
    extract_cover_sequence,
    max_sum_box,
    transform_cover_vectors,
)
from repro.geometry.sdf import Box
from repro.geometry.transform import symmetry_matrices
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_solid


def brute_force_max_box(weights: np.ndarray) -> float:
    best = -np.inf
    nx, ny, nz = weights.shape
    for x1 in range(nx):
        for x2 in range(x1, nx):
            for y1 in range(ny):
                for y2 in range(y1, ny):
                    for z1 in range(nz):
                        for z2 in range(z1, nz):
                            best = max(
                                best,
                                weights[x1 : x2 + 1, y1 : y2 + 1, z1 : z2 + 1].sum(),
                            )
    return best


class TestMaxSumBox:
    def test_single_positive_voxel(self):
        weights = np.full((5, 5, 5), -1.0)
        weights[2, 3, 1] = 10.0
        best, lower, upper = max_sum_box(weights)
        assert best == pytest.approx(10.0)
        assert np.array_equal(lower, [2, 3, 1])
        assert np.array_equal(upper, [2, 3, 1])

    def test_reports_box_that_realizes_sum(self, rng):
        weights = rng.normal(size=(6, 5, 4))
        best, lower, upper = max_sum_box(weights)
        realized = weights[
            lower[0] : upper[0] + 1, lower[1] : upper[1] + 1, lower[2] : upper[2] + 1
        ].sum()
        assert realized == pytest.approx(best)

    def test_matches_brute_force(self, rng):
        for _ in range(15):
            shape = rng.integers(2, 6, size=3)
            weights = rng.normal(size=tuple(shape))
            weights[rng.random(size=weights.shape) < 0.4] = 0.0
            assert max_sum_box(weights)[0] == pytest.approx(
                brute_force_max_box(weights)
            )

    def test_all_zero_grid(self):
        best, lower, upper = max_sum_box(np.zeros((4, 4, 4)))
        assert best == 0.0

    def test_all_negative_picks_least_bad_single_cell(self):
        weights = -np.arange(1, 9, dtype=float).reshape(2, 2, 2)
        best, lower, upper = max_sum_box(weights)
        assert best == pytest.approx(-1.0)
        assert np.array_equal(lower, upper)

    def test_non_3d_rejected(self):
        with pytest.raises(FeatureError):
            max_sum_box(np.zeros((3, 3)))

    @given(
        arrays(
            float,
            (4, 4, 4),
            elements=st.floats(-5, 5, allow_nan=False, width=16),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_optimality_property(self, weights):
        assert max_sum_box(weights)[0] == pytest.approx(
            brute_force_max_box(weights), abs=1e-6
        )


class TestCoverExtraction:
    def test_single_box_needs_one_cover(self):
        grid = voxelize_solid(Box(size=(1.5, 1.0, 0.7)), resolution=12, supersample=1)
        sequence = extract_cover_sequence(grid, k=5)
        assert len(sequence.covers) == 1
        assert sequence.final_error == 0

    def test_lshape_needs_two_covers(self, lshape_grid):
        sequence = extract_cover_sequence(lshape_grid, k=7)
        assert sequence.final_error == 0
        assert len(sequence.covers) == 2

    def test_errors_monotonically_decrease(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=7)
        errors = sequence.errors
        assert all(b < a for a, b in zip(errors, errors[1:]))

    def test_approximation_matches_error(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=7)
        approx = sequence.approximation()
        assert int((approx ^ tire_grid.occupancy).sum()) == sequence.final_error

    def test_subtraction_covers_used_for_hollow_shapes(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=7)
        signs = {cover.sign for cover in sequence.covers}
        assert -1 in signs  # the tire's hole is best carved out

    def test_subtraction_can_be_disabled(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=7, allow_subtraction=False)
        assert all(cover.sign > 0 for cover in sequence.covers)

    def test_first_cover_is_union(self, lshape_grid):
        assert extract_cover_sequence(lshape_grid, k=3).covers[0].sign == 1

    def test_greedy_gains_are_recorded(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=5)
        for cover, before, after in zip(
            sequence.covers, sequence.errors, sequence.errors[1:]
        ):
            assert cover.gain == before - after

    def test_empty_grid_rejected(self):
        with pytest.raises(FeatureError):
            extract_cover_sequence(VoxelGrid.empty(8), k=3)

    def test_invalid_k_rejected(self, lshape_grid):
        with pytest.raises(FeatureError):
            extract_cover_sequence(lshape_grid, k=0)


class TestCoverGeometry:
    def test_cover_mask_roundtrip(self):
        cover = Cover(sign=1, lower=(1, 2, 3), upper=(4, 5, 6), gain=0)
        mask = cover.mask(10)
        assert mask.sum() == cover.volume() == 4 * 4 * 4

    def test_center_and_extent(self):
        cover = Cover(sign=1, lower=(0, 0, 0), upper=(3, 1, 0), gain=0)
        assert np.allclose(cover.center(), [2.0, 1.0, 0.5])
        assert np.array_equal(cover.extent(), [4, 2, 1])


class TestFeatureEncoding:
    def test_feature_vector_shape_and_padding(self, lshape_grid):
        sequence = extract_cover_sequence(lshape_grid, k=7)
        flat = sequence.feature_vector(7)
        assert flat.shape == (42,)
        # Two real covers, five dummy (zero) rows.
        rows = flat.reshape(7, 6)
        assert np.allclose(rows[2:], 0.0)
        assert not np.allclose(rows[:2], 0.0)

    def test_feature_rows_have_positive_extents(self, tire_grid):
        rows = extract_cover_sequence(tire_grid, k=7).feature_vectors()
        assert np.all(rows[:, 3:] > 0)

    def test_normalization_scales_by_resolution(self, lshape_grid):
        sequence = extract_cover_sequence(lshape_grid, k=3)
        raw = sequence.feature_vectors(normalize=False)
        scaled = sequence.feature_vectors(normalize=True)
        assert np.allclose(raw / lshape_grid.resolution, scaled)

    def test_k_too_small_rejected(self, tire_grid):
        sequence = extract_cover_sequence(tire_grid, k=7)
        if len(sequence.covers) > 2:
            with pytest.raises(FeatureError):
                sequence.feature_vector(2)

    def test_model_interface(self, lshape_grid):
        model = CoverSequenceModel(k=5)
        features = model.extract(lshape_grid)
        assert features.shape == (30,)
        assert model.dimension(12) == 30


class TestCoverSymmetryTransform:
    @staticmethod
    def _rasterize(rows: np.ndarray, signs, resolution: int) -> np.ndarray:
        """Invert the feature encoding: rebuild the union/difference mask
        from (position, extent) rows."""
        state = np.zeros((resolution,) * 3, dtype=bool)
        center = resolution / 2.0
        for row, sign in zip(rows, signs):
            position = row[:3] * resolution + center
            extent = row[3:] * resolution
            lower = np.rint(position - extent / 2.0).astype(int)
            upper = np.rint(position + extent / 2.0).astype(int)
            mask = np.zeros_like(state)
            mask[lower[0] : upper[0], lower[1] : upper[1], lower[2] : upper[2]] = True
            state = (state | mask) if sign > 0 else (state & ~mask)
        return state

    def test_transform_reconstructs_rotated_object(self, lshape_grid):
        """Transforming extracted cover vectors describes exactly the
        rotated object.  (Row-by-row equality with a fresh greedy
        extraction does NOT hold in general: equal-gain ties may pick a
        different but equally good decomposition.)"""
        sequence = extract_cover_sequence(lshape_grid, k=7)
        assert sequence.final_error == 0
        rows = sequence.feature_vectors()
        signs = [cover.sign for cover in sequence.covers]
        for matrix in symmetry_matrices(True)[:8]:
            transformed_rows = transform_cover_vectors(rows, matrix)
            rebuilt = self._rasterize(transformed_rows, signs, lshape_grid.resolution)
            moved_grid = lshape_grid.transformed(matrix)
            assert np.array_equal(rebuilt, moved_grid.occupancy)

    def test_extent_stays_positive(self, rng):
        rows = np.hstack([rng.normal(size=(4, 3)), rng.uniform(0.1, 1.0, size=(4, 3))])
        for matrix in symmetry_matrices(True):
            moved = transform_cover_vectors(rows, matrix)
            assert np.all(moved[:, 3:] > 0)

    def test_single_vector_input(self, rng):
        row = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        moved = transform_cover_vectors(row, np.eye(3))
        assert moved.shape == (6,)
        assert np.allclose(moved, row)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(FeatureError):
            transform_cover_vectors(rng.normal(size=(2, 5)), np.eye(3))

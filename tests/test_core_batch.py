"""Tests for the batched minimal-matching kernels (repro.core.batch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.batch import (
    PackedSets,
    hungarian_batch,
    match_many,
    match_pairs,
    pairwise_matrix,
)
from repro.core.min_matching import min_matching_distance, min_matching_match
from repro.exceptions import DistanceError
from tests.conftest import random_vector_sets

# Collections of 2..8 ragged sets (1..5 vectors each, 3-d), bounded
# values so the scipy oracle and the omega-padded kernel see the same
# well-conditioned problems.
set_collections = st.lists(
    st.integers(1, 5).flatmap(
        lambda m: arrays(
            float, (m, 3), elements=st.floats(-50, 50, allow_nan=False, width=32)
        )
    ),
    min_size=2,
    max_size=8,
)


class TestPackedSets:
    def test_pack_pads_with_omega(self, rng):
        omega = np.array([1.0, 2.0, 3.0])
        sets = [rng.normal(size=(2, 3)), rng.normal(size=(4, 3))]
        packed = PackedSets.pack(sets, capacity=5, omega=omega)
        assert packed.data.shape == (2, 5, 3)
        assert np.array_equal(packed.sizes, [2, 4])
        assert np.all(packed.data[0, 2:] == omega)
        assert np.all(packed.data[1, 4:] == omega)

    def test_pack_default_capacity_is_max_size(self, rng):
        packed = PackedSets.pack([rng.normal(size=(m, 3)) for m in (1, 4, 2)])
        assert packed.capacity == 4

    def test_pack_rejects_empty_collection(self):
        with pytest.raises(DistanceError):
            PackedSets.pack([])

    def test_pack_rejects_empty_set(self, rng):
        with pytest.raises(DistanceError):
            PackedSets.pack([rng.normal(size=(2, 3)), np.empty((0, 3))])

    def test_pack_rejects_undersized_capacity(self, rng):
        with pytest.raises(DistanceError):
            PackedSets.pack([rng.normal(size=(5, 3))], capacity=4)

    def test_pack_rejects_mixed_dimensions(self, rng):
        with pytest.raises(DistanceError):
            PackedSets.pack([rng.normal(size=(2, 3)), rng.normal(size=(2, 4))])

    def test_pad_query_roundtrip(self, rng):
        packed = PackedSets.pack([rng.normal(size=(3, 4)) for _ in range(3)])
        query = rng.normal(size=(2, 4))
        prepared = packed.pad_query(query)
        assert prepared.size == 2
        assert np.array_equal(prepared.data[:2], query)
        assert np.all(prepared.data[2:] == 0.0)

    def test_pad_query_rejects_oversized(self, rng):
        packed = PackedSets.pack([rng.normal(size=(3, 4))])
        with pytest.raises(DistanceError):
            packed.pad_query(rng.normal(size=(4, 4)))


class TestHungarianBatch:
    def test_lockstep_matches_scalar_bitwise(self, rng):
        """Both solvers resolve argmin ties to the first minimum, so the
        assignments — not just the optimal values — must coincide."""
        costs = rng.uniform(size=(64, 7, 7))
        assert np.array_equal(
            hungarian_batch(costs, backend="lockstep"),
            hungarian_batch(costs, backend="scalar"),
        )

    def test_lockstep_matches_scipy_values(self, rng):
        for n in (1, 2, 5, 9):
            costs = rng.uniform(size=(32, n, n))
            own = hungarian_batch(costs, backend="lockstep")
            oracle = hungarian_batch(costs, backend="scipy")
            take = np.arange(n)[None, :]
            batch = np.arange(32)[:, None]
            assert np.allclose(
                costs[batch, take, own].sum(axis=1),
                costs[batch, take, oracle].sum(axis=1),
            )

    def test_degenerate_ties(self):
        costs = np.zeros((3, 4, 4))
        assignment = hungarian_batch(costs)
        for row in assignment:
            assert sorted(row) == [0, 1, 2, 3]

    def test_empty_batch(self):
        assert hungarian_batch(np.empty((0, 5, 5))).shape == (0, 5)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(DistanceError):
            hungarian_batch(rng.uniform(size=(3, 4, 5)))
        with pytest.raises(DistanceError):
            hungarian_batch(rng.uniform(size=(4, 4)))

    def test_rejects_non_finite(self):
        costs = np.zeros((2, 3, 3))
        costs[1, 0, 0] = np.inf
        with pytest.raises(DistanceError):
            hungarian_batch(costs)

    def test_rejects_unknown_backend(self):
        with pytest.raises(DistanceError):
            hungarian_batch(np.zeros((1, 2, 2)), backend="quantum")


class TestMatchMany:
    def test_matches_per_pair(self, rng):
        sets = random_vector_sets(rng, 40, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        query = rng.normal(size=(3, 6))
        batch = match_many(query, packed)
        reference = np.array([min_matching_distance(query, s) for s in sets])
        assert np.allclose(batch, reference, atol=1e-9)

    def test_self_distance_exactly_zero(self, rng):
        """The engine's self-query guarantees hinge on exact zeros, which
        the einsum-only Gram kernel preserves (a BLAS matmul would not)."""
        sets = random_vector_sets(rng, 30, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        for i in (0, 13, 29):
            assert match_many(sets[i], packed)[i] == 0.0

    def test_indices_subset(self, rng):
        sets = random_vector_sets(rng, 20, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        query = rng.normal(size=(2, 6))
        subset = np.array([3, 17, 0])
        full = match_many(query, packed)
        assert np.array_equal(match_many(query, packed, indices=subset), full[subset])

    def test_prepared_query_reuse(self, rng):
        sets = random_vector_sets(rng, 10, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        query = rng.normal(size=(4, 6))
        prepared = packed.pad_query(query)
        assert np.array_equal(match_many(prepared, packed), match_many(query, packed))

    def test_flags_match_per_pair(self, rng):
        sets = random_vector_sets(rng, 25, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        query = sets[4]
        _, identity = match_many(query, packed, return_flags=True)
        reference = [min_matching_match(query, s).is_identity for s in sets]
        assert list(identity) == reference

    def test_all_virtual_matching_is_not_identity(self):
        """Opposite collinear singletons tie the identity pairing against
        the all-penalty matching (triangle equality); if the solver picks
        the all-virtual one, the flag must not be vacuously True."""
        x = np.array([[3.0, 4.0]])
        y = np.array([[-3.0, -4.0]])
        packed = PackedSets.pack([x, y], capacity=2)
        distances, identity = match_many(x, packed, return_flags=True)
        assert distances[1] == pytest.approx(10.0)
        assert bool(identity[0]) is True  # self-match is the identity
        assert bool(identity[1]) is False

    @given(set_collections)
    @settings(max_examples=40, deadline=None)
    def test_property_matches_per_pair_and_oracle(self, sets):
        """Ragged cardinalities, m<n swaps and k=1 all reduce to the same
        distances as the per-pair path and the scipy oracle."""
        packed = PackedSets.pack(sets)
        query = sets[0]
        lockstep = match_many(query, packed)
        oracle = match_many(packed.pad_query(query), packed, backend="scipy")
        reference = np.array([min_matching_distance(query, s) for s in sets])
        assert np.allclose(lockstep, oracle, atol=1e-8)
        assert np.allclose(lockstep, reference, atol=1e-8)


class TestMatchPairs:
    def test_matches_per_pair(self, rng):
        sets = random_vector_sets(rng, 15, dim=6, max_size=7)
        packed = PackedSets.pack(sets, capacity=7)
        i_idx = np.array([0, 3, 14, 7])
        j_idx = np.array([1, 3, 2, 11])
        batch = match_pairs(packed, i_idx, j_idx)
        reference = [min_matching_distance(sets[i], sets[j]) for i, j in zip(i_idx, j_idx)]
        assert np.allclose(batch, reference, atol=1e-9)

    def test_cross_database(self, rng):
        left = random_vector_sets(rng, 5, dim=6, max_size=7)
        right = random_vector_sets(rng, 8, dim=6, max_size=7)
        packed_l = PackedSets.pack(left, capacity=7)
        packed_r = PackedSets.pack(right, capacity=7)
        batch = match_pairs(packed_l, np.array([0, 4]), np.array([7, 2]), right=packed_r)
        assert batch[0] == pytest.approx(min_matching_distance(left[0], right[7]))
        assert batch[1] == pytest.approx(min_matching_distance(left[4], right[2]))

    def test_rejects_incompatible_layouts(self, rng):
        packed_a = PackedSets.pack([rng.normal(size=(3, 6))], capacity=7)
        packed_b = PackedSets.pack([rng.normal(size=(3, 6))], capacity=5)
        with pytest.raises(DistanceError):
            match_pairs(packed_a, np.array([0]), np.array([0]), right=packed_b)

    def test_rejects_mismatched_index_arrays(self, rng):
        packed = PackedSets.pack([rng.normal(size=(3, 6))], capacity=7)
        with pytest.raises(DistanceError):
            match_pairs(packed, np.array([0, 0]), np.array([0]))


class TestPairwiseMatrix:
    def _reference(self, sets):
        n = len(sets)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = matrix[j, i] = min_matching_distance(sets[i], sets[j])
        return matrix

    def test_matches_per_pair(self, rng):
        sets = random_vector_sets(rng, 30, dim=6, max_size=7)
        matrix = pairwise_matrix(sets, capacity=7)
        assert np.allclose(matrix, self._reference(sets), atol=1e-9)
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0.0)

    def test_chunking_is_invisible(self, rng):
        sets = random_vector_sets(rng, 20, dim=6, max_size=7)
        assert np.array_equal(
            pairwise_matrix(sets, chunk_size=7), pairwise_matrix(sets)
        )

    def test_parallel_equals_serial(self, rng):
        sets = random_vector_sets(rng, 24, dim=6, max_size=7)
        serial = pairwise_matrix(sets, chunk_size=32)
        parallel = pairwise_matrix(sets, chunk_size=32, n_jobs=2)
        assert np.array_equal(serial, parallel)

    def test_parallel_flags_equal_serial(self, rng):
        sets = random_vector_sets(rng, 16, dim=6, max_size=7)
        serial, serial_flags = pairwise_matrix(sets, chunk_size=16, return_flags=True)
        parallel, parallel_flags = pairwise_matrix(
            sets, chunk_size=16, n_jobs=2, return_flags=True
        )
        assert np.array_equal(serial, parallel)
        assert np.array_equal(serial_flags, parallel_flags)

    def test_flags_match_per_pair(self, rng):
        sets = random_vector_sets(rng, 18, dim=6, max_size=7)
        _, flags = pairwise_matrix(sets, capacity=7, return_flags=True)
        for i in range(len(sets)):
            for j in range(i + 1, len(sets)):
                result = min_matching_match(sets[i], sets[j])
                assert flags[i, j] == (not result.is_identity)

    def test_scalar_backend_agrees(self, rng):
        sets = random_vector_sets(rng, 12, dim=6, max_size=7)
        assert np.array_equal(
            pairwise_matrix(sets, backend="lockstep"),
            pairwise_matrix(sets, backend="scalar"),
        )

    def test_rejects_bad_chunk_size(self, rng):
        with pytest.raises(DistanceError):
            pairwise_matrix(random_vector_sets(rng, 4), chunk_size=0)

    def test_singleton_sets(self, rng):
        """k=1: every 'matching' is a single Euclidean distance."""
        sets = [rng.normal(size=(1, 4)) for _ in range(8)]
        matrix = pairwise_matrix(sets)
        for i in range(8):
            for j in range(8):
                assert matrix[i, j] == pytest.approx(
                    np.linalg.norm(sets[i][0] - sets[j][0])
                )

    @given(set_collections)
    @settings(max_examples=30, deadline=None)
    def test_property_matches_per_pair_and_oracle(self, sets):
        lockstep = pairwise_matrix(sets)
        oracle = pairwise_matrix(sets, backend="scipy")
        assert np.allclose(lockstep, self._reference(sets), atol=1e-8)
        assert np.allclose(lockstep, oracle, atol=1e-8)

"""Tests for binary morphology primitives."""

import numpy as np
import pytest

from repro.exceptions import VoxelizationError
from repro.voxel.morphology import (
    connected_components,
    dilate,
    erode,
    fill_solid,
    flood_fill_outside,
    sphere_kernel,
    surface_mask,
)


def single_voxel(shape=(7, 7, 7), at=(3, 3, 3)):
    arr = np.zeros(shape, dtype=bool)
    arr[at] = True
    return arr


class TestDilateErode:
    def test_dilate_single_voxel_gives_cross(self):
        grown = dilate(single_voxel())
        assert grown.sum() == 7  # center + 6 face neighbors

    def test_erode_inverts_dilate_on_ball(self):
        arr = sphere_kernel(3)
        assert np.array_equal(erode(dilate(arr)) | arr, dilate(erode(arr)) | arr)

    def test_erode_removes_isolated_voxel(self):
        assert erode(single_voxel()).sum() == 0

    def test_border_voxels_erode_away(self):
        arr = np.ones((4, 4, 4), dtype=bool)
        inner = erode(arr)
        assert inner.sum() == 8  # the 2x2x2 core
        assert not inner[0].any() and not inner[-1].any()

    def test_iterations_compose(self):
        arr = sphere_kernel(4)
        assert np.array_equal(dilate(arr, 2), dilate(dilate(arr)))

    def test_non_3d_rejected(self):
        with pytest.raises(VoxelizationError):
            dilate(np.zeros((3, 3), dtype=bool))


class TestSurfaceMask:
    def test_solid_cube_surface(self):
        arr = np.zeros((6, 6, 6), dtype=bool)
        arr[1:5, 1:5, 1:5] = True
        surface = surface_mask(arr)
        assert surface.sum() == 4**3 - 2**3  # shell of the 4^3 cube
        assert not (surface & ~arr).any()

    def test_thin_plate_is_all_surface(self):
        arr = np.zeros((6, 6, 6), dtype=bool)
        arr[:, :, 3] = True
        assert np.array_equal(surface_mask(arr), arr)

    def test_grid_border_counts_as_surface(self):
        arr = np.ones((3, 3, 3), dtype=bool)
        surface = surface_mask(arr)
        assert surface.sum() == 26  # all but the very center


class TestFloodFill:
    def test_outside_excludes_enclosed_void(self):
        shell = np.zeros((8, 8, 8), dtype=bool)
        shell[1:7, 1:7, 1:7] = True
        shell[3:5, 3:5, 3:5] = False  # hollow core
        outside = flood_fill_outside(shell)
        assert not outside[3, 3, 3]  # core not reachable from border
        assert outside[0, 0, 0]

    def test_fill_solid_closes_void(self):
        shell = np.zeros((8, 8, 8), dtype=bool)
        shell[1:7, 1:7, 1:7] = True
        shell[3:5, 3:5, 3:5] = False
        filled = fill_solid(shell)
        assert filled[3, 3, 3]
        assert filled.sum() == 6**3

    def test_open_shape_is_not_filled(self):
        tube = np.zeros((8, 8, 8), dtype=bool)
        tube[2:6, 2:6, :] = True
        tube[3:5, 3:5, :] = False  # channel open at both ends
        filled = fill_solid(tube)
        assert not filled[3, 3, 4]


class TestSphereKernel:
    @pytest.mark.parametrize("radius", [1, 2, 3, 5])
    def test_kernel_shape_and_symmetry(self, radius):
        kernel = sphere_kernel(radius)
        assert kernel.shape == (2 * radius + 1,) * 3
        assert kernel[radius, radius, radius]
        assert np.array_equal(kernel, kernel[::-1])
        assert np.array_equal(kernel, kernel.transpose(1, 0, 2))

    def test_kernel_volume_approaches_ball(self):
        radius = 8
        kernel = sphere_kernel(radius)
        analytic = 4.0 / 3.0 * np.pi * radius**3
        assert kernel.sum() == pytest.approx(analytic, rel=0.05)

    def test_radius_validation(self):
        with pytest.raises(VoxelizationError):
            sphere_kernel(0)


class TestConnectedComponents:
    def test_two_separate_blobs(self):
        arr = np.zeros((8, 8, 8), dtype=bool)
        arr[1:3, 1:3, 1:3] = True
        arr[5:7, 5:7, 5:7] = True
        labels = connected_components(arr)
        assert labels.max() == 2
        assert (labels > 0).sum() == arr.sum()

    def test_diagonal_voxels_are_separate_under_6_connectivity(self):
        arr = np.zeros((4, 4, 4), dtype=bool)
        arr[1, 1, 1] = True
        arr[2, 2, 2] = True
        assert connected_components(arr).max() == 2

    def test_empty_grid(self):
        assert connected_components(np.zeros((3, 3, 3), dtype=bool)).max() == 0

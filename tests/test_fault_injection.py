"""Fault-injection tests: every degradation path of ingest & persistence.

Uses the deterministic harness in :mod:`repro.testing.faults` to make
voxelization, file reads and ``np.savez`` fail on schedule, and asserts
that error isolation, the retry ladder, atomic saves and tolerant loads
all behave exactly as documented.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.parts import make_part
from repro.exceptions import IngestError, StorageError, VoxelizationError
from repro.geometry.mesh import box_mesh
from repro.geometry.sdf import Box
from repro.io.database import ObjectDatabase, StoredObject
from repro.io.stl import write_stl_binary
from repro.normalize.pose import PoseInfo
from repro.pipeline import Pipeline
from repro.testing import (
    corrupt_bytes,
    fail_always,
    fail_every,
    fail_first,
    fail_once,
    never_fail,
    read_faults,
    savez_faults,
    tamper_npz_array,
    voxelization_faults,
)
from repro.voxel.voxelize import voxelize_solid


@pytest.fixture
def parts(rng):
    families = ["tire", "bracket", "door", "wing"]
    return [
        make_part(family, rng, name=f"{family}-{index}", class_id=index)
        for index, family in enumerate(families)
    ]


@pytest.fixture
def pipeline():
    return Pipeline(resolution=8)


@pytest.fixture
def mesh_dir(tmp_path):
    """A mesh collection where 2 of 10 files (~20%) are corrupt."""
    directory = tmp_path / "meshes"
    directory.mkdir()
    for index in range(8):
        write_stl_binary(
            box_mesh(size=(1.0 + 0.1 * index, 1.0, 0.5)),
            directory / f"good{index}.stl",
        )
    (directory / "bad-short.stl").write_bytes(b"\x00" * 30)
    (directory / "bad-index.off").write_text(
        "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 7\n"
    )
    return directory


def sample_database(n=3, resolution=8):
    db = ObjectDatabase()
    for index in range(n):
        grid = voxelize_solid(
            Box(size=(1.0 + 0.2 * index, 1.0, 0.5)), resolution=resolution
        )
        db.add(
            StoredObject(
                name=f"obj-{index}",
                family="box",
                class_id=index,
                grid=grid,
                pose=PoseInfo((1.0, 1.0, 1.0), (0.0, 0.0, 0.0)),
            )
        )
    db.set_features("m", [np.full((2, 6), float(index)) for index in range(n)])
    return db


class TestSchedules:
    def test_fail_once_fires_exactly_once(self):
        schedule = fail_once(at=2)
        assert [schedule.fire() for _ in range(4)] == [False, True, False, False]
        assert schedule.calls == 4 and schedule.fired == 1

    def test_fail_every_nth(self):
        schedule = fail_every(3)
        assert [schedule.fire() for _ in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_fail_first_and_always_and_never(self):
        assert [fail_first(2).fire() for _ in range(1)] == [True]
        assert fail_always().fire() is True
        assert never_fail().fire() is False


class TestErrorIsolation:
    def test_skip_isolates_the_failing_part(self, pipeline, parts):
        with voxelization_faults(fail_once(at=2)) as schedule:
            report = pipeline.process_parts(parts, on_error="skip")
        assert schedule.fired == 1
        assert len(report) == len(parts) - 1
        assert [rec.status for rec in report.records] == ["ok", "failed", "ok", "ok"]
        failure = report.failures[0]
        assert failure.name == parts[1].name
        assert failure.error_type == "VoxelizationError"
        assert not report.all_ok()
        with pytest.raises(IngestError):
            report.raise_if_failed()

    def test_raise_propagates_the_original_exception(self, pipeline, parts):
        with voxelization_faults(fail_once(at=1)):
            with pytest.raises(VoxelizationError, match="injected"):
                pipeline.process_parts(parts, on_error="raise")

    def test_default_policy_is_raise(self, pipeline, parts):
        with voxelization_faults(fail_once(at=1)):
            with pytest.raises(VoxelizationError):
                pipeline.process_parts(parts)

    def test_unknown_policy_rejected(self, pipeline, parts):
        with pytest.raises(IngestError):
            pipeline.process_parts(parts, on_error="ignore")

    def test_report_is_sequence_compatible(self, pipeline, parts):
        report = pipeline.process_parts(parts)
        assert report.all_ok()
        assert len(report) == len(parts)
        assert report[0].name == parts[0].name
        assert [obj.class_id for obj in report] == [0, 1, 2, 3]
        assert report[:2][1].name == parts[1].name


class TestRetryLadder:
    def test_transient_fault_recovers_on_second_attempt(self, pipeline, parts):
        with voxelization_faults(fail_once(at=1)) as schedule:
            report = pipeline.process_parts(parts, on_error="retry")
        assert report.all_ok()
        first = report.records[0]
        assert first.attempts == 2 and first.fallback == "supersample"
        # the remaining parts succeeded first try
        assert all(rec.attempts == 1 for rec in report.records[1:])
        assert schedule.fired == 1

    def test_persistent_fault_falls_back_to_reduced_resolution(self, pipeline, parts):
        with voxelization_faults(fail_first(2)):
            report = pipeline.process_parts(parts[:1], on_error="retry")
        assert report.all_ok()
        record = report.records[0]
        assert record.attempts == 3 and record.fallback == "reduced-resolution"
        assert report[0].grid.resolution == pipeline._reduced_resolution()

    def test_ladder_exhaustion_records_failure(self, pipeline, parts):
        with voxelization_faults(fail_always()):
            report = pipeline.process_parts(parts[:2], on_error="retry")
        assert len(report) == 0
        assert all(rec.status == "failed" for rec in report.records)
        assert all(rec.attempts == 3 for rec in report.records)

    def test_records_carry_wall_time(self, pipeline, parts):
        report = pipeline.process_parts(parts[:2])
        assert all(rec.seconds >= 0.0 for rec in report.records)
        assert report.total_seconds >= 0.0


class TestMeshDirectoryIngest:
    def test_skip_ingests_all_healthy_files(self, pipeline, mesh_dir):
        report = pipeline.process_mesh_directory(mesh_dir, on_error="skip")
        assert len(report) == 8
        assert {rec.name for rec in report.failures} == {"bad-short", "bad-index"}
        for failure in report.failures:
            assert failure.error_type == "StorageError"
            assert failure.source is not None
        # class ids follow the sorted file list, stable across failures
        assert [obj.name for obj in report] == [f"good{i}" for i in range(8)]

    def test_raise_propagates_first_parser_error(self, pipeline, mesh_dir):
        with pytest.raises(StorageError):
            pipeline.process_mesh_directory(mesh_dir, on_error="raise")

    def test_transient_read_fault_cleared_by_retry(self, pipeline, tmp_path):
        directory = tmp_path / "clean"
        directory.mkdir()
        for index in range(3):
            write_stl_binary(box_mesh(), directory / f"p{index}.stl")
        with read_faults(fail_once(at=1)) as schedule:
            report = pipeline.process_mesh_directory(directory, on_error="retry")
        assert report.all_ok()
        assert report.records[0].attempts == 2
        assert schedule.fired == 1

    def test_read_fault_skipped_without_retry(self, pipeline, tmp_path):
        directory = tmp_path / "clean"
        directory.mkdir()
        for index in range(3):
            write_stl_binary(box_mesh(), directory / f"p{index}.stl")
        with read_faults(fail_once(at=1)):
            report = pipeline.process_mesh_directory(directory, on_error="skip")
        assert len(report) == 2
        assert report.failures[0].error_type == "StorageError"

    def test_missing_directory_raises_storage_error(self, pipeline, tmp_path):
        with pytest.raises(StorageError):
            pipeline.process_mesh_directory(tmp_path / "nope")


class TestAtomicSave:
    def test_interrupted_save_preserves_existing_database(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.npz"
        db.save(path)
        before = path.read_bytes()
        with savez_faults(fail_once()):
            with pytest.raises(StorageError, match="injected"):
                db.save(path)
        assert path.read_bytes() == before  # byte-for-byte untouched
        assert len(ObjectDatabase.load(path)) == 3
        # no temp-file litter either
        assert [p.name for p in tmp_path.iterdir()] == ["db.npz"]

    def test_interrupted_first_save_leaves_no_file(self, tmp_path):
        db = sample_database()
        path = tmp_path / "fresh.npz"
        with savez_faults(fail_once()):
            with pytest.raises(StorageError):
                db.save(path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_grid_is_atomic_too(self, tmp_path, tire_grid):
        from repro.io.vox import load_grid, save_grid

        path = tmp_path / "grid.npz"
        save_grid(tire_grid, path)
        before = path.read_bytes()
        with savez_faults(fail_once()):
            with pytest.raises(StorageError):
                save_grid(tire_grid, path)
        assert path.read_bytes() == before
        assert load_grid(path) == tire_grid


class TestTolerantLoad:
    def test_strict_load_rejects_corrupted_record(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.npz"
        db.save(path)
        tamper_npz_array(path, "grid_1")
        with pytest.raises(StorageError, match="checksum"):
            ObjectDatabase.load(path)

    def test_tolerant_load_skips_exactly_the_corrupted_record(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.npz"
        db.save(path)
        tamper_npz_array(path, "grid_1")
        loaded = ObjectDatabase.load(path, strict=False)
        assert len(loaded) == 2
        assert loaded.names() == ["obj-0", "obj-2"]
        assert len(loaded.skipped) == 1
        skip = loaded.skipped[0]
        assert skip.index == 1 and skip.name == "obj-1"
        assert skip.error_type == "StorageError"
        assert "checksum" in skip.error

    def test_tampered_features_detected(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.npz"
        db.save(path)
        tamper_npz_array(path, "feat_0_m")
        loaded = ObjectDatabase.load(path, strict=False)
        assert len(loaded) == 2
        assert loaded.skipped[0].name == "obj-0"

    def test_container_level_corruption_still_raises(self, tmp_path):
        db = sample_database()
        path = tmp_path / "db.npz"
        db.save(path)
        corrupt_bytes(path, offset=-40, count=24)  # hits the central directory
        with pytest.raises(StorageError):
            ObjectDatabase.load(path, strict=False)

    def test_format_v1_files_still_load(self, tmp_path):
        """Databases written before checksums (meta = bare list) load fine."""
        db = sample_database()
        path = tmp_path / "v2.npz"
        db.save(path)
        import json

        with np.load(path) as data:
            arrays = {name: np.asarray(data[name]) for name in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        v1_records = [
            {key: value for key, value in record.items() if key != "checksum"}
            for record in meta["records"]
        ]
        arrays["meta"] = np.frombuffer(
            json.dumps(v1_records).encode(), dtype=np.uint8
        )
        v1_path = tmp_path / "v1.npz"
        with open(v1_path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        loaded = ObjectDatabase.load(v1_path)
        assert len(loaded) == 3 and not loaded.skipped

    def test_future_format_version_rejected(self, tmp_path):
        import json

        db = sample_database(n=1)
        path = tmp_path / "db.npz"
        db.save(path)
        with np.load(path) as data:
            arrays = {name: np.asarray(data[name]) for name in data.files}
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["format_version"] = 99
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(StorageError, match="format version"):
            ObjectDatabase.load(path)


class TestCliSurfacing:
    def test_partial_success_exits_3_and_prints_report(
        self, mesh_dir, tmp_path, capsys
    ):
        out = tmp_path / "db.npz"
        code = main(
            ["ingest", "--meshes", str(mesh_dir), "--out", str(out),
             "--resolution", "8"]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "8/10 objects ingested" in captured.err
        assert "bad-short" in captured.err and "bad-index" in captured.err
        assert "ingested 8 objects" in captured.out
        assert len(ObjectDatabase.load(out)) == 8

    def test_strict_flag_exits_1_on_first_bad_file(self, mesh_dir, tmp_path):
        code = main(
            ["ingest", "--meshes", str(mesh_dir), "--strict",
             "--out", str(tmp_path / "db.npz"), "--resolution", "8"]
        )
        assert code == 1

    def test_on_error_retry_accepted(self, tmp_path, capsys):
        directory = tmp_path / "clean"
        directory.mkdir()
        for index in range(2):
            write_stl_binary(box_mesh(), directory / f"p{index}.stl")
        code = main(
            ["ingest", "--meshes", str(directory), "--on-error", "retry",
             "--out", str(tmp_path / "db.npz"), "--resolution", "8"]
        )
        assert code == 0
        assert "ingested 2 objects" in capsys.readouterr().out

    def test_all_bad_exits_2_without_writing(self, tmp_path, capsys):
        directory = tmp_path / "allbad"
        directory.mkdir()
        (directory / "a.stl").write_bytes(b"junk")
        (directory / "b.stl").write_bytes(b"\x00" * 10)
        out = tmp_path / "db.npz"
        code = main(
            ["ingest", "--meshes", str(directory), "--out", str(out),
             "--resolution", "8"]
        )
        assert code == 2
        assert not out.exists()
        assert "nothing ingested" in capsys.readouterr().err

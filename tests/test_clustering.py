"""Tests for OPTICS, reachability plots, single-link and quality metrics."""

import numpy as np
import pytest

from repro.clustering.hierarchy import single_link_clusters, single_link_dendrogram
from repro.clustering.optics import (
    ClusterOrdering,
    distance_rows_from_function,
    distance_rows_from_matrix,
    distance_rows_from_sets,
    optics,
)
from repro.clustering.quality import (
    adjusted_rand_index,
    best_cut_quality,
    cluster_purity,
    structure_contrast,
)
from repro.clustering.reachability import (
    auto_cut_level,
    cut_levels,
    extract_clusters,
    render_reachability_plot,
)
from repro.exceptions import ReproError


def blobs(rng, centers, n_per=30, scale=0.05, n_noise=8):
    points = np.vstack(
        [rng.normal(loc=c, scale=scale, size=(n_per, 2)) for c in centers]
    )
    noise = rng.uniform(-1, 2, size=(n_noise, 2))
    labels = np.concatenate(
        [
            np.repeat(np.arange(len(centers)), n_per),
            -np.arange(1, n_noise + 1),
        ]
    )
    return np.vstack([points, noise]), labels


def euclidean_matrix(points):
    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


@pytest.fixture
def blob_ordering(rng):
    points, labels = blobs(rng, [(0, 0), (1, 0), (0.5, 1)])
    matrix = euclidean_matrix(points)
    return optics(len(points), distance_rows_from_matrix(matrix), min_pts=5), labels, matrix


class TestOptics:
    def test_ordering_is_permutation(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        assert sorted(ordering.order) == list(range(len(labels)))

    def test_first_object_has_infinite_reachability(self, blob_ordering):
        ordering, _, _ = blob_ordering
        assert np.isinf(ordering.reachability[0])

    def test_clusters_are_contiguous_valleys(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        clusters, _ = extract_clusters(ordering, 0.12)
        assert len(clusters) == 3
        for members in clusters:
            # Members of one valley share one ground-truth class.
            member_labels = [labels[m] for m in members if labels[m] >= 0]
            assert len(set(member_labels)) == 1

    def test_min_pts_one_chains_everything(self, rng):
        points, _ = blobs(rng, [(0, 0)], n_per=20, n_noise=0)
        matrix = euclidean_matrix(points)
        ordering = optics(len(points), distance_rows_from_matrix(matrix), min_pts=2)
        # With tiny min_pts every object is density-reachable.
        assert np.isfinite(ordering.reachability[1:]).all()

    def test_eps_limits_reachability(self, rng):
        points, _ = blobs(rng, [(0, 0), (5, 5)], n_per=15, n_noise=0)
        matrix = euclidean_matrix(points)
        ordering = optics(
            len(points), distance_rows_from_matrix(matrix), min_pts=3, eps=1.0
        )
        # The jump between the two far clusters must be infinite now.
        assert np.isinf(ordering.reachability).sum() >= 2

    def test_distance_rows_from_function(self, rng):
        points, _ = blobs(rng, [(0, 0)], n_per=10, n_noise=0)
        rows_fn = distance_rows_from_function(
            list(points), lambda a, b: float(np.linalg.norm(a - b))
        )
        assert np.allclose(rows_fn(0), np.linalg.norm(points - points[0], axis=1))

    def test_distance_rows_from_function_lru_cache(self, rng):
        points, _ = blobs(rng, [(0, 0)], n_per=10, n_noise=0)
        calls = []

        def distance(a, b):
            calls.append(1)
            return float(np.linalg.norm(a - b))

        rows_fn = distance_rows_from_function(
            list(points), distance, max_cache_rows=2
        )
        first = rows_fn(0)
        assert np.array_equal(rows_fn(0), first)  # served from cache
        assert len(calls) == len(points)
        rows_fn(1)
        rows_fn(2)  # evicts row 0 (LRU, capacity 2)
        calls.clear()
        rows_fn(0)
        assert len(calls) == len(points)

    def test_distance_rows_from_sets_matches_per_pair(self, rng):
        from repro.core.min_matching import min_matching_distance

        sets = [rng.normal(size=(rng.integers(1, 5), 4)) for _ in range(12)]
        rows_fn = distance_rows_from_sets(sets)
        for i in (0, 5, 11):
            reference = [min_matching_distance(sets[i], s) for s in sets]
            assert np.allclose(rows_fn(i), reference, atol=1e-9)

    def test_optics_on_sets_matches_matrix_path(self, rng):
        from repro.core.min_matching import min_matching_distance

        sets = [rng.normal(size=(rng.integers(1, 5), 4)) for _ in range(20)]
        via_sets = optics(len(sets), distance_rows_from_sets(sets), min_pts=3)
        matrix = np.zeros((20, 20))
        for i in range(20):
            for j in range(i + 1, 20):
                matrix[i, j] = matrix[j, i] = min_matching_distance(sets[i], sets[j])
        via_matrix = optics(len(sets), distance_rows_from_matrix(matrix), min_pts=3)
        assert np.array_equal(via_sets.order, via_matrix.order)
        assert np.allclose(via_sets.reachability, via_matrix.reachability, atol=1e-9)

    def test_deterministic(self, blob_ordering, rng):
        ordering, labels, matrix = blob_ordering
        again = optics(len(labels), distance_rows_from_matrix(matrix), min_pts=5)
        assert np.array_equal(ordering.order, again.order)

    def test_reachability_of_lookup(self, blob_ordering):
        ordering, _, _ = blob_ordering
        position = 10
        obj = int(ordering.order[position])
        assert ordering.reachability_of(obj) == ordering.reachability[position]

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            optics(0, lambda i: np.zeros(0))
        with pytest.raises(ReproError):
            optics(3, lambda i: np.zeros(3), min_pts=0)
        with pytest.raises(ReproError):
            optics(3, lambda i: np.zeros(3), eps=-1.0)

    def test_wrong_row_length_rejected(self):
        with pytest.raises(ReproError):
            optics(3, lambda i: np.zeros(5))


class TestReachabilityPlot:
    def test_extract_noise_at_tiny_eps(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        clusters, noise = extract_clusters(ordering, 1e-9)
        assert not clusters
        assert len(noise) == len(labels)

    def test_extract_everything_at_huge_eps(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        clusters, noise = extract_clusters(ordering, 1e9)
        assert len(noise) == 0
        assert sum(len(c) for c in clusters) == len(labels)

    def test_partition_property(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        for eps in (0.05, 0.12, 0.5):
            clusters, noise = extract_clusters(ordering, eps)
            members = sorted(m for c in clusters for m in c) + sorted(noise)
            assert sorted(members) == list(range(len(labels)))

    def test_render_contains_bars_and_title(self, blob_ordering):
        ordering, _, _ = blob_ordering
        art = render_reachability_plot(ordering, height=6, title="demo-title")
        assert "demo-title" in art
        assert "#" in art and "|" in art

    def test_render_aggregates_wide_orderings(self, blob_ordering):
        ordering, _, _ = blob_ordering
        art = render_reachability_plot(ordering, height=5, max_width=40)
        longest = max(len(line) for line in art.splitlines())
        assert longest <= 45

    def test_cut_levels_are_sorted_unique(self, blob_ordering):
        ordering, _, _ = blob_ordering
        levels = cut_levels(ordering, 10)
        assert np.all(np.diff(levels) > 0)

    def test_auto_cut_level_is_interior_quantile(self, blob_ordering):
        ordering, _, _ = blob_ordering
        finite = ordering.reachability[np.isfinite(ordering.reachability)]
        level = auto_cut_level(ordering)
        assert finite.min() <= level <= finite.max()
        assert level == pytest.approx(float(np.quantile(finite, 0.4)))

    def test_auto_cut_level_all_infinite(self):
        ordering = ClusterOrdering(
            order=np.arange(3),
            reachability=np.full(3, np.inf),
            core_distances=np.full(3, np.inf),
        )
        assert auto_cut_level(ordering) == 0.0

    def test_auto_cut_level_validates_quantile(self, blob_ordering):
        ordering, _, _ = blob_ordering
        with pytest.raises(ReproError):
            auto_cut_level(ordering, quantile=1.5)

    def test_validation(self, blob_ordering):
        ordering, _, _ = blob_ordering
        with pytest.raises(ReproError):
            extract_clusters(ordering, -0.1)
        with pytest.raises(ReproError):
            render_reachability_plot(ordering, height=1)


class TestSingleLink:
    def test_dendrogram_has_n_minus_one_merges(self, blob_ordering):
        _, labels, matrix = blob_ordering
        merges = single_link_dendrogram(matrix)
        assert len(merges) == len(labels) - 1

    def test_merges_sorted_by_distance(self, blob_ordering):
        _, _, matrix = blob_ordering
        distances = [m.distance for m in single_link_dendrogram(matrix)]
        assert distances == sorted(distances)

    def test_cut_recovers_blobs(self, blob_ordering):
        _, labels, matrix = blob_ordering
        clusters = single_link_clusters(matrix, 0.12)
        big = [c for c in clusters if len(c) >= 10]
        assert len(big) == 3

    def test_cut_zero_gives_singletons(self, blob_ordering):
        _, labels, matrix = blob_ordering
        clusters = single_link_clusters(matrix, -1.0)
        assert len(clusters) == len(labels)

    def test_single_object(self):
        assert single_link_dendrogram(np.zeros((1, 1))) == []


class TestQualityMetrics:
    def test_ari_perfect_and_random(self, rng):
        labels = np.repeat([0, 1, 2], 20)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        shuffled = rng.permutation(labels)
        assert abs(adjusted_rand_index(labels, shuffled)) < 0.2

    def test_ari_invariant_to_label_names(self):
        a = [0, 0, 1, 1, 2, 2]
        b = [5, 5, 9, 9, 7, 7]
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_ari_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            adjusted_rand_index([0, 1], [0, 1, 2])

    def test_purity_perfect(self):
        labels = np.array([0, 0, 1, 1])
        assert cluster_purity([[0, 1], [2, 3]], [], labels) == pytest.approx(1.0)

    def test_purity_mixed_cluster(self):
        labels = np.array([0, 0, 1, 1])
        assert cluster_purity([[0, 1, 2, 3]], [], labels) == pytest.approx(0.5)

    def test_purity_partition_enforced(self):
        with pytest.raises(ReproError):
            cluster_purity([[0]], [], np.array([0, 1]))

    def test_best_cut_finds_good_eps(self, blob_ordering):
        ordering, labels, _ = blob_ordering
        ari, eps = best_cut_quality(ordering, labels)
        assert ari > 0.85
        assert np.isfinite(eps)

    def test_structure_contrast_orders_plots(self, rng):
        """Clustered data produces more contrast than uniform data."""
        clustered, _ = blobs(rng, [(0, 0), (2, 2)], n_per=40, n_noise=0)
        uniform = rng.uniform(0, 1, size=(80, 2))
        ordering_c = optics(
            len(clustered), distance_rows_from_matrix(euclidean_matrix(clustered)), 5
        )
        ordering_u = optics(
            len(uniform), distance_rows_from_matrix(euclidean_matrix(uniform)), 5
        )
        assert structure_contrast(ordering_c) > structure_contrast(ordering_u)

"""Durability acceptance tests: WAL-backed databases, the recovery
ladder, crash-point injection (in-process), and `repro db verify`.

The two headline guarantees from the issue:

* a durable database recovered after a crash at ANY registered crash
  point equals a fresh build over the mutations that survived in the
  log — never fewer than the acknowledged ones under ``fsync=always``;
* deliberately corrupting the newest snapshot generation degrades to
  the previous generation + a longer WAL replay (observable through
  the ``db.recovery.fallbacks`` counter), never a crash or a silent
  wrong answer.
"""

from __future__ import annotations

import gc
import json
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.db import BACKENDS, SimilarityDatabase
from repro.exceptions import (
    LockTimeout,
    QueryError,
    SnapshotIntegrityError,
    StorageError,
)
from repro.testing.faults import (
    CRASH_POINTS,
    InjectedCrash,
    armed_crash_point,
    corrupt_bytes,
    tamper_npz_array,
)

CAPACITY = 3
DIM = 3

# The crash points a single-database mutation plan can reach;
# "between-shard-checkpoints" fires only inside the sharded
# checkpoint walk (covered by tests/test_sharded_crash.py).
SINGLE_DB_POINTS = tuple(
    p for p in CRASH_POINTS if p != "between-shard-checkpoints"
)


@contextmanager
def capture_metrics():
    reg = obs.registry()
    reg.reset()
    obs.enable()
    try:
        yield reg
    finally:
        reg.reset()
        obs.disable()


def rand_set(rng):
    return rng.integers(-8, 9, size=(int(rng.integers(1, CAPACITY + 1)), DIM)).astype(
        float
    )


def make_plan(rng, n=18):
    """A deterministic interleaved mutation plan with checkpoints and a
    compaction, expressed as replayable (op, oid, array) tuples."""
    plan, live, oid = [], set(), 0
    for step in range(n):
        plan.append(("add", oid, rand_set(rng)))
        live.add(oid)
        oid += 1
        if step % 5 == 3 and live:
            victim = int(rng.choice(sorted(live)))
            plan.append(("remove", victim, None))
            live.discard(victim)
        if step % 7 == 5 and live:
            target = int(rng.choice(sorted(live)))
            plan.append(("update", target, rand_set(rng)))
        if step == n // 2:
            plan.append(("checkpoint", None, None))
        if step == n - 3:
            plan.append(("compact", None, None))
    return plan


def apply_step(db, step) -> None:
    op, oid, arr = step
    if op == "add":
        db.add(oid, arr)
    elif op == "remove":
        db.remove(oid)
    elif op == "update":
        db.update(oid, arr)
    elif op == "compact":
        db.compact()
    elif op == "checkpoint":
        db.checkpoint()


def fresh_build(plan, backend):
    db = SimilarityDatabase(CAPACITY, backend=backend)
    for step in plan:
        if step[0] != "checkpoint":
            apply_step(db, step)
    return db


def assert_equivalent(recovered, reference, rng):
    assert sorted(recovered._sets) == sorted(reference._sets)
    for oid in reference._sets:
        np.testing.assert_array_equal(recovered._sets[oid], reference._sets[oid])
    for _ in range(3):
        query = rand_set(rng)
        got, _ = recovered.knn_query(query, 5)
        expected, _ = reference.knn_query(query, 5)
        assert [(m.object_id, m.distance) for m in got] == [
            (m.object_id, m.distance) for m in expected
        ]
        got_r, _ = recovered.range_query(query, 6.0)
        expected_r, _ = reference.range_query(query, 6.0)
        assert [(m.object_id, m.distance) for m in got_r] == [
            (m.object_id, m.distance) for m in expected_r
        ]


def matches_some_prefix(recovered, plan, backend, floor, rng) -> bool:
    """True iff *recovered* equals a fresh build over plan[:M] for some
    M >= floor — the crash-consistency contract: at least everything
    acknowledged, at most everything attempted."""
    for upto in range(floor, len(plan) + 1):
        reference = fresh_build(plan[:upto], backend)
        if sorted(recovered._sets) != sorted(reference._sets):
            continue
        if all(
            np.array_equal(recovered._sets[oid], reference._sets[oid])
            for oid in reference._sets
        ):
            assert_equivalent(recovered, reference, rng)
            return True
    return False


class TestDurableRoundtrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovery_equals_fresh_build(self, backend, tmp_path, rng):
        plan = make_plan(rng)
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(
            CAPACITY, backend=backend, durable=True, path=dbdir
        )
        for step in plan:
            apply_step(db, step)
        db.close()
        recovered = SimilarityDatabase.load(dbdir)
        assert recovered.durable and recovered.last_recovery is not None
        assert not recovered.last_recovery.degraded
        assert_equivalent(recovered, fresh_build(plan, backend), rng)
        recovered.close()

    def test_recovery_without_any_checkpoint(self, tmp_path, rng):
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
        sets = {oid: rand_set(rng) for oid in range(8)}
        for oid, arr in sets.items():
            db.add(oid, arr)
        db.close()
        recovered = SimilarityDatabase.load(dbdir)
        assert recovered.last_recovery.used_generation == 0
        assert recovered.last_recovery.replayed_records == 8
        assert sorted(recovered._sets) == sorted(sets)
        recovered.close()

    def test_mutations_after_recovery_are_durable(self, tmp_path, rng):
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
        db.add(0, rand_set(rng))
        db.close()
        second = SimilarityDatabase.load(dbdir)
        second.add(1, rand_set(rng))
        second.close()
        third = SimilarityDatabase.load(dbdir)
        assert sorted(third._sets) == [0, 1]
        third.close()

    def test_checkpoint_rotates_and_retires(self, tmp_path, rng):
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(
            CAPACITY, durable=True, path=dbdir, keep_generations=2
        )
        for generation in range(4):
            db.add(generation, rand_set(rng))
            db.checkpoint()
        assert db.generation == 4
        snapshots = sorted(p.name for p in dbdir.glob("snapshot-*.npz"))
        segments = sorted(p.name for p in dbdir.glob("wal-*.log"))
        assert snapshots == ["snapshot-00000003.npz", "snapshot-00000004.npz"]
        assert segments == ["wal-00000003.log", "wal-00000004.log"]
        db.close()
        recovered = SimilarityDatabase.load(dbdir)
        assert sorted(recovered._sets) == [0, 1, 2, 3]
        recovered.close()

    def test_durable_save_is_checkpoint_and_export_still_works(
        self, tmp_path, rng
    ):
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
        db.add(0, rand_set(rng))
        db.save()  # no path: checkpoint
        assert db.generation == 1
        export = tmp_path / "export.npz"
        db.save(export)  # foreign path: plain archive export
        assert db.generation == 1
        db.close()
        exported = SimilarityDatabase.load(export)
        assert not exported.durable
        assert sorted(exported._sets) == [0]

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(QueryError, match="needs a directory path"):
            SimilarityDatabase(CAPACITY, durable=True)
        with pytest.raises(QueryError, match="only meaningful"):
            SimilarityDatabase(CAPACITY, path=tmp_path / "x")
        SimilarityDatabase(CAPACITY, durable=True, path=tmp_path / "db").close()
        with pytest.raises(StorageError, match="already holds"):
            SimilarityDatabase(CAPACITY, durable=True, path=tmp_path / "db")


class TestRecoveryLadder:
    def _build(self, dbdir, rng, backend="xtree"):
        plan = make_plan(rng)
        db = SimilarityDatabase(
            CAPACITY, backend=backend, durable=True, path=dbdir,
            keep_generations=3,
        )
        for step in plan:
            apply_step(db, step)
        db.checkpoint()
        db.add(900, rand_set(rng))  # tail mutation beyond the last snapshot
        plan.append(("add", 900, db._sets[900]))
        db.close()
        return plan

    def test_corrupt_newest_snapshot_falls_back_one_generation(
        self, tmp_path, rng
    ):
        dbdir = tmp_path / "db"
        plan = self._build(dbdir, rng)
        newest = sorted(dbdir.glob("snapshot-*.npz"))[-1]
        corrupt_bytes(newest, 100, 64)
        with capture_metrics() as reg:
            recovered = SimilarityDatabase.load(dbdir)
            assert reg.counter("db.recovery.fallbacks").value == 1
            assert reg.counter("db.recovery.degraded").value == 1
        report = recovered.last_recovery
        assert report.degraded and report.fallbacks == 1
        assert report.used_generation == report.requested_generation - 1
        assert report.failures  # the ladder names what it skipped
        assert_equivalent(recovered, fresh_build(plan, "xtree"), rng)
        recovered.close()

    def test_all_snapshots_corrupt_replays_full_wal_from_empty(
        self, tmp_path, rng
    ):
        dbdir = tmp_path / "db"
        plan = self._build(dbdir, rng)
        for snapshot in dbdir.glob("snapshot-*.npz"):
            corrupt_bytes(snapshot, 100, 64)
        with capture_metrics() as reg:
            recovered = SimilarityDatabase.load(dbdir)
            assert reg.counter("db.recovery.fallbacks").value == 2
        assert recovered.last_recovery.used_generation == 0
        assert_equivalent(recovered, fresh_build(plan, "xtree"), rng)
        recovered.close()

    def test_unrecoverable_without_source_raises(self, tmp_path, rng):
        dbdir = tmp_path / "db"
        self._build(dbdir, rng)
        for snapshot in dbdir.glob("snapshot-*.npz"):
            corrupt_bytes(snapshot, 100, 64)
        # Retire the early WAL chain: the empty-base rung is now
        # impossible and no ObjectDatabase source is configured.
        (dbdir / "wal-00000000.log").unlink()
        with pytest.raises(StorageError, match="recovery impossible"):
            SimilarityDatabase.load(dbdir)

    def test_recovered_db_keeps_serving_after_degraded_load(
        self, tmp_path, rng
    ):
        dbdir = tmp_path / "db"
        self._build(dbdir, rng)
        newest = sorted(dbdir.glob("snapshot-*.npz"))[-1]
        corrupt_bytes(newest, 100, 64)
        recovered = SimilarityDatabase.load(dbdir)
        recovered.add(901, rand_set(rng))
        recovered.checkpoint()  # re-establishes a clean generation
        recovered.close()
        healed = SimilarityDatabase.load(dbdir)
        assert not healed.last_recovery.degraded
        assert 901 in healed
        healed.close()


class TestSourceRebuild:
    def test_last_rung_rebuilds_from_object_database(self, tmp_path):
        from repro.features.vector_set_model import VectorSetModel
        from repro.geometry.sdf import Box, Sphere
        from repro.io.database import ObjectDatabase, StoredObject
        from repro.pipeline import Pipeline

        # A tiny real ingest: two solids -> ObjectDatabase with features.
        model = VectorSetModel(k=CAPACITY)
        pipeline = Pipeline(resolution=10)
        odb = ObjectDatabase()
        features = []
        for name, solid in [
            ("box", Box(size=(2.0, 1.0, 0.5))),
            ("ball", Sphere(radius=1.0)),
        ]:
            grid, pose = pipeline.process_solid(solid)
            odb.add(StoredObject(name=name, family="f", class_id=0,
                                 grid=grid, pose=pose))
            features.append(model.extract(grid))
        odb.set_features(f"vector-set(k={CAPACITY})", features)
        source = tmp_path / "objects.npz"
        odb.save(source)

        dbdir = tmp_path / "db"
        db = SimilarityDatabase(
            CAPACITY, durable=True, path=dbdir, source=source
        )
        db.add(0, features[0])
        db.checkpoint()
        db.close()
        # Destroy every snapshot AND the early WAL chain.
        for snapshot in dbdir.glob("snapshot-*.npz"):
            corrupt_bytes(snapshot, 100, 64)
        (dbdir / "wal-00000000.log").unlink()
        with capture_metrics() as reg:
            recovered = SimilarityDatabase.load(dbdir)
            assert reg.counter("db.recovery.source_rebuilds").value == 1
        assert recovered.last_recovery.source_rebuild
        assert recovered.last_recovery.degraded
        assert len(recovered) == 2
        # The rebuilt state is itself durable: a plain reload works.
        recovered.close()
        again = SimilarityDatabase.load(dbdir)
        assert len(again) == 2
        again.close()


class TestInProcessCrashPoints:
    """Every registered crash point, simulated in-process: the crashed
    database object is abandoned mid-flight and recovery runs from
    whatever reached the disk."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("point", SINGLE_DB_POINTS)
    def test_recovery_from_crash_point(self, point, backend, tmp_path, rng):
        plan = make_plan(rng)
        dbdir = tmp_path / f"db-{point}-{backend}"
        db = SimilarityDatabase(
            CAPACITY, backend=backend, durable=True, path=dbdir
        )
        acknowledged = 0
        crashed = False
        with armed_crash_point(point, at=3 if point == "after-wal-append" else 1):
            try:
                for step in plan:
                    apply_step(db, step)
                    acknowledged += 1
            except InjectedCrash:
                crashed = True
        assert crashed, f"plan never reached crash point {point}"
        del db
        gc.collect()  # drop the crashed process's file handles
        recovered = SimilarityDatabase.load(dbdir)
        state_plan = [s for s in plan if s[0] != "checkpoint"]
        acked_state = len(
            [s for s in plan[:acknowledged] if s[0] != "checkpoint"]
        )
        assert matches_some_prefix(
            recovered, state_plan, backend, acked_state, rng
        ), f"recovered state matches no acknowledged-or-later prefix ({point})"
        recovered.close()

    def test_crash_before_first_checkpoint_swap_keeps_generation(
        self, tmp_path, rng
    ):
        dbdir = tmp_path / "db"
        db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
        db.add(0, rand_set(rng))
        with armed_crash_point("mid-checkpoint-swap"):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        del db
        gc.collect()
        recovered = SimilarityDatabase.load(dbdir)
        # CURRENT was never republished: still generation 0, state intact.
        assert recovered.last_recovery.requested_generation == 0
        assert sorted(recovered._sets) == [0]
        recovered.checkpoint()
        assert recovered.generation == 1
        recovered.close()


class TestSnapshotIntegrityErrors:
    def test_crc_error_names_offending_member(self, tmp_path, rng):
        db = SimilarityDatabase(CAPACITY)
        for oid in range(6):
            db.add(oid, rand_set(rng))
        path = tmp_path / "db.npz"
        db.save(path)
        tamper_npz_array(path, "index__entry_lowers")
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            SimilarityDatabase.load(path)
        assert excinfo.value.member == "index__entry_lowers"
        assert "index entry-table array 'entry_lowers'" in str(excinfo.value)
        assert "checksum mismatch" in str(excinfo.value)

    def test_object_store_member_is_classified(self, tmp_path, rng):
        db = SimilarityDatabase(CAPACITY)
        db.add(0, rand_set(rng))
        path = tmp_path / "db.npz"
        db.save(path)
        tamper_npz_array(path, "set_data")
        with pytest.raises(SnapshotIntegrityError, match="object-store column 'set_data'"):
            SimilarityDatabase.load(path)


class TestLockTimeout:
    def test_write_timeout_while_reader_holds(self):
        import threading

        from repro.concurrency import RWLock

        lock = RWLock()
        entered, release = threading.Event(), threading.Event()

        def reader():
            with lock.read():
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=reader)
        thread.start()
        assert entered.wait(5)
        try:
            with pytest.raises(LockTimeout, match="write lock"):
                with lock.write(timeout=0.05):
                    pass
            # The withdrawn writer claim must not strand new readers.
            with lock.read(timeout=1.0):
                pass
        finally:
            release.set()
            thread.join()

    def test_read_timeout_while_writer_holds(self):
        import threading

        from repro.concurrency import RWLock

        lock = RWLock()
        entered, release = threading.Event(), threading.Event()

        def writer():
            with lock.write():
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=writer)
        thread.start()
        assert entered.wait(5)
        try:
            with pytest.raises(LockTimeout, match="read lock"):
                with lock.read(timeout=0.05):
                    pass
        finally:
            release.set()
            thread.join()

    def test_database_lock_timeout_plumbing(self, rng):
        import threading

        db = SimilarityDatabase(CAPACITY, lock_timeout=0.05)
        db.add(0, rand_set(rng))
        entered, release = threading.Event(), threading.Event()

        def wedged_writer():
            with db._lock.write():
                entered.set()
                release.wait(5)

        thread = threading.Thread(target=wedged_writer)
        thread.start()
        assert entered.wait(5)
        try:
            with pytest.raises(LockTimeout):
                db.knn_query(rand_set(rng), 1)
            with pytest.raises(LockTimeout):
                db.add(1, rand_set(rng))
        finally:
            release.set()
            thread.join()
        # After the writer releases, everything proceeds again.
        db.add(1, rand_set(rng))
        assert len(db) == 2


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402


class TestDurabilityProperties:
    """Hypothesis properties over randomized mutation plans.

    Plans are derived from a drawn seed (not drawn element-wise) so
    hypothesis shrinks over two small integers while the plan itself
    keeps the realistic interleaving that ``make_plan`` produces.
    """

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(4, 14))
    def test_wal_replay_is_idempotent(self, seed, n):
        import shutil
        import tempfile

        from repro.wal import replay

        rng = np.random.default_rng(seed)
        plan = make_plan(rng, n=n)
        root = Path(tempfile.mkdtemp(prefix="repro-idem-"))
        try:
            dbdir = root / "db"
            db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
            for step in plan:
                apply_step(db, step)
            db.close()
            recovered = SimilarityDatabase.load(dbdir)
            before = {
                oid: arr.copy() for oid, arr in recovered._sets.items()
            }
            # Replay the whole surviving chain a second time: the
            # recovered state must not move.
            recovered._replaying = True
            try:
                for segment in sorted(dbdir.glob("wal-*.log")):
                    for record in replay(segment):
                        recovered._apply_replay(record)
            finally:
                recovered._replaying = False
            assert sorted(recovered._sets) == sorted(before)
            for oid, arr in before.items():
                np.testing.assert_array_equal(recovered._sets[oid], arr)
            query = rand_set(rng)
            reference = fresh_build(plan, "xtree")
            got, _ = recovered.knn_query(query, 4)
            expected, _ = reference.knn_query(query, 4)
            assert [(m.object_id, m.distance) for m in got] == [
                (m.object_id, m.distance) for m in expected
            ]
            recovered.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @pytest.mark.parametrize("point", SINGLE_DB_POINTS)
    @given(seed=st.integers(0, 2**32 - 1), hit=st.integers(1, 6))
    def test_recovery_from_any_crash_point_matches_acknowledged_prefix(
        self, point, seed, hit
    ):
        import shutil
        import tempfile

        rng = np.random.default_rng(seed)
        plan = make_plan(rng)
        root = Path(tempfile.mkdtemp(prefix="repro-crash-"))
        try:
            dbdir = root / "db"
            db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
            acknowledged = 0
            crashed = False
            with armed_crash_point(
                point, at=hit if point == "after-wal-append" else 1
            ):
                try:
                    for step in plan:
                        apply_step(db, step)
                        acknowledged += 1
                except InjectedCrash:
                    crashed = True
            del db
            gc.collect()
            if not crashed:
                return  # plan too short to reach the armed hit: vacuous
            recovered = SimilarityDatabase.load(dbdir)
            state_plan = [s for s in plan if s[0] != "checkpoint"]
            acked_state = len(
                [s for s in plan[:acknowledged] if s[0] != "checkpoint"]
            )
            assert matches_some_prefix(
                recovered, state_plan, "xtree", acked_state, rng
            ), f"no acknowledged-or-later prefix matches ({point}, seed={seed})"
            recovered.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)


class TestVerifyCommand:
    def _populated(self, dbdir, rng):
        db = SimilarityDatabase(CAPACITY, durable=True, path=dbdir)
        for oid in range(6):
            db.add(oid, rand_set(rng))
        db.checkpoint()
        db.add(6, rand_set(rng))
        db.close()

    def test_verify_ok(self, tmp_path, rng, capsys):
        from repro.cli import main

        dbdir = tmp_path / "db"
        self._populated(dbdir, rng)
        assert main(["db", "verify", str(dbdir)]) == 0
        assert "verify: ok" in capsys.readouterr().out

    def test_verify_degraded(self, tmp_path, rng, capsys):
        from repro.cli import main

        dbdir = tmp_path / "db"
        self._populated(dbdir, rng)
        corrupt_bytes(sorted(dbdir.glob("snapshot-*.npz"))[-1], 100, 64)
        assert main(["db", "verify", str(dbdir)]) == 3
        captured = capsys.readouterr()
        assert "degraded" in captured.err
        assert "recovered with degradation" in captured.out

    def test_verify_corrupt(self, tmp_path, rng, capsys):
        from repro.cli import main

        dbdir = tmp_path / "db"
        self._populated(dbdir, rng)
        for snapshot in dbdir.glob("snapshot-*.npz"):
            corrupt_bytes(snapshot, 100, 64)
        (dbdir / "wal-00000000.log").unlink()
        assert main(["db", "verify", str(dbdir)]) == 1
        assert "verify: corrupt" in capsys.readouterr().err

    def test_verify_snapshot_file(self, tmp_path, rng, capsys):
        from repro.cli import main

        db = SimilarityDatabase(CAPACITY)
        db.add(0, rand_set(rng))
        path = tmp_path / "db.npz"
        db.save(path)
        assert main(["db", "verify", str(path)]) == 0
        tamper_npz_array(path, "set_data")
        assert main(["db", "verify", str(path)]) == 1
        assert "object-store column" in capsys.readouterr().err

    def test_verify_not_a_database(self, tmp_path):
        from repro.cli import main

        bogus = tmp_path / "bogus"
        bogus.mkdir()
        assert main(["db", "verify", str(bogus)]) == 1

"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.quality import best_cut_quality
from repro.core.queries import FilterRefineEngine
from repro.datasets.car import make_car_dataset
from repro.features.vector_set_model import VectorSetModel
from repro.index.mtree import MTree
from repro.core.min_matching import min_matching_distance
from repro.pipeline import Pipeline, pairwise_distance_matrix


@pytest.fixture(scope="module")
def small_car_database():
    """A reduced Car dataset processed through the full pipeline."""
    parts, labels = make_car_dataset(
        class_counts={"tire": 8, "door": 8, "engine_block": 8, "bracket": 8},
        n_noise=4,
        seed=99,
    )
    pipeline = Pipeline(resolution=15)
    objects = pipeline.process_parts(parts)
    model = VectorSetModel(k=7)
    sets = [model.extract(obj.grid) for obj in objects]
    return objects, sets, labels


class TestEndToEnd:
    def test_knn_retrieves_same_family(self, small_car_database):
        """The headline behaviour: a part's nearest neighbors are its
        family members."""
        objects, sets, labels = small_car_database
        engine = FilterRefineEngine(sets, capacity=7)
        hits = 0
        for query_id in range(0, 8):  # the tires
            results, _ = engine.knn_query(sets[query_id], 4)
            neighbor_families = [
                objects[m.object_id].family
                for m in results
                if m.object_id != query_id
            ]
            hits += sum(f == objects[query_id].family for f in neighbor_families)
        assert hits >= 16  # most neighbors are tires too

    def test_optics_recovers_families(self, small_car_database):
        objects, sets, labels = small_car_database
        matrix = pairwise_distance_matrix(sets, min_matching_distance)
        ordering = optics(len(sets), distance_rows_from_matrix(matrix), min_pts=3)
        ari, _ = best_cut_quality(ordering, labels)
        assert ari > 0.5

    def test_mtree_agrees_with_engine(self, small_car_database):
        objects, sets, labels = small_car_database
        engine = FilterRefineEngine(sets, capacity=7)
        tree = MTree(min_matching_distance, capacity=6)
        for i, vector_set in enumerate(sets):
            tree.insert(vector_set, i)
        for query_id in (0, 9, 17, 25):
            from_engine, _ = engine.knn_query(sets[query_id], 5)
            from_tree = tree.knn(sets[query_id], 5)
            assert [m.object_id for m in from_engine] == [oid for oid, _ in from_tree]

    def test_range_query_self_retrieval(self, small_car_database):
        _, sets, _ = small_car_database
        engine = FilterRefineEngine(sets, capacity=7)
        results, stats = engine.range_query(sets[10], 1e-9)
        assert 10 in {m.object_id for m in results}
        assert stats.exact_computations <= len(sets)

    def test_database_save_load_preserves_queries(
        self, small_car_database, tmp_path
    ):
        from repro.io.database import ObjectDatabase, StoredObject

        objects, sets, labels = small_car_database
        db = ObjectDatabase()
        for obj in objects:
            db.add(
                StoredObject(
                    name=obj.name,
                    family=obj.family,
                    class_id=obj.class_id,
                    grid=obj.grid,
                    pose=obj.pose,
                )
            )
        db.set_features("vs7", sets)
        path = tmp_path / "car.npz"
        db.save(path)
        loaded = ObjectDatabase.load(path)
        loaded_sets = loaded.get_features("vs7")
        engine_a = FilterRefineEngine(sets, capacity=7)
        engine_b = FilterRefineEngine(loaded_sets, capacity=7)
        ra, _ = engine_a.knn_query(sets[5], 3)
        rb, _ = engine_b.knn_query(loaded_sets[5], 3)
        assert [m.object_id for m in ra] == [m.object_id for m in rb]

"""Tests for the histogram feature models (volume and solid-angle)."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features.base import cell_counts, cell_index_of_voxels, check_partition
from repro.features.solid_angle import SolidAngleModel, solid_angle_values
from repro.features.volume import VolumeModel
from repro.geometry.sdf import Box, Sphere
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_solid


class TestPartitioning:
    def test_divisibility_enforced(self):
        with pytest.raises(FeatureError):
            check_partition(15, 4)  # 15 / 4 not integral
        assert check_partition(15, 5) == 3

    def test_cell_counts_sum_to_voxel_count(self, tire_grid):
        counts = cell_counts(tire_grid, 5)
        assert counts.sum() == tire_grid.count
        assert counts.shape == (125,)

    def test_cell_counts_full_grid(self):
        grid = VoxelGrid.full(6)
        assert np.all(cell_counts(grid, 3) == 8)  # 2^3 voxels per cell

    def test_cell_index_mapping_consistent_with_counts(self, tire_grid):
        idx = tire_grid.indices()
        cells = cell_index_of_voxels(idx, tire_grid.resolution, 5)
        manual = np.bincount(cells, minlength=125)
        assert np.array_equal(manual, cell_counts(tire_grid, 5))

    def test_invalid_partition_count(self):
        with pytest.raises(FeatureError):
            check_partition(12, 0)


class TestVolumeModel:
    def test_range_zero_one(self, tire_grid):
        features = VolumeModel(5).extract(tire_grid)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_full_grid_is_all_ones(self):
        assert np.allclose(VolumeModel(3).extract(VoxelGrid.full(6)), 1.0)

    def test_empty_cells_are_zero(self):
        grid = VoxelGrid.empty(6)
        grid.occupancy[0, 0, 0] = True
        features = VolumeModel(3).extract(grid)
        assert features[0] == pytest.approx(1 / 8)
        assert np.count_nonzero(features) == 1

    def test_dimension(self):
        assert VolumeModel(5).dimension(15) == 125

    def test_identical_objects_identical_features(self, tire_grid):
        a = VolumeModel(5).extract(tire_grid)
        b = VolumeModel(5).extract(tire_grid.copy())
        assert np.array_equal(a, b)

    def test_more_partitions_more_detail(self):
        """Two objects with equal total volume but different layout are
        indistinguishable at p=1 and distinguishable at higher p."""
        left = VoxelGrid.empty(8)
        left.occupancy[0:4, :, :] = True
        right = VoxelGrid.empty(8)
        right.occupancy[4:8, :, :] = True
        coarse = VolumeModel(1)
        fine = VolumeModel(2)
        assert np.allclose(coarse.extract(left), coarse.extract(right))
        assert not np.allclose(fine.extract(left), fine.extract(right))

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            VolumeModel(0)


class TestSolidAngle:
    def test_sphere_surface_values_near_half(self, sphere_grid):
        """On a locally flat/spherical surface roughly half the kernel
        ball is filled."""
        values = solid_angle_values(sphere_grid, 2)
        assert 0.3 < values.mean() < 0.7

    def test_convex_corner_is_small(self):
        grid = voxelize_solid(Box(size=(1.0, 1.0, 1.0)), resolution=12)
        values = solid_angle_values(grid, 2)
        surface = grid.surface_indices()
        lower, upper = grid.bounding_box()
        # The eight box corners are maximally convex: smallest SA values.
        corner_mask = np.all((surface == lower) | (surface == upper), axis=1)
        assert corner_mask.any()
        assert values[corner_mask].mean() < values.mean()

    def test_concave_notch_is_large(self):
        solid = Box(size=(2.0, 2.0, 2.0)) - Box(center=(0.0, 0.0, 1.0), size=(0.7, 0.7, 1.0))
        grid = voxelize_solid(solid, resolution=16)
        values = solid_angle_values(grid, 2)
        # Concave areas push the maximum above the convex-mean.
        assert values.max() > 0.6

    def test_feature_rules(self, sphere_grid):
        """Cells: mean SA where surface, 1.0 where interior-only, 0 where
        empty (the three rules of Section 3.3.2)."""
        model = SolidAngleModel(partitions=5, kernel_radius=2)
        features = model.extract(sphere_grid)
        assert features.shape == (125,)
        # Center cell of a filled ball is interior-only -> exactly 1.
        center_cell = 2 * 25 + 2 * 5 + 2
        assert features[center_cell] == pytest.approx(1.0)
        # Corner cells are empty -> exactly 0.
        assert features[0] == 0.0
        # Surface cells carry averages strictly between 0 and 1.
        surface_values = features[(features > 0) & (features < 1)]
        assert len(surface_values) > 0

    def test_kernel_too_large_rejected(self, sphere_grid):
        with pytest.raises(FeatureError):
            SolidAngleModel(partitions=5, kernel_radius=8).extract(sphere_grid)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SolidAngleModel(partitions=0)
        with pytest.raises(ValueError):
            SolidAngleModel(kernel_radius=0)

    def test_names(self):
        assert "volume" in VolumeModel(3).name
        assert "solid-angle" in SolidAngleModel(3, 2).name

"""Tests for the page manager and the paper's I/O cost model."""

import pytest

from repro.exceptions import IndexError_
from repro.index.pages import (
    SECONDS_PER_BYTE,
    SECONDS_PER_PAGE_ACCESS,
    IOCost,
    PageManager,
)


class TestCostModel:
    def test_paper_constants(self):
        """Section 5.4: 8 ms per page access, 200 ns per byte."""
        assert SECONDS_PER_PAGE_ACCESS == pytest.approx(8e-3)
        assert SECONDS_PER_BYTE == pytest.approx(200e-9)

    def test_seconds_conversion(self):
        cost = IOCost(page_accesses=100, bytes_read=1_000_000)
        assert cost.seconds() == pytest.approx(100 * 8e-3 + 1_000_000 * 200e-9)

    def test_add(self):
        total = IOCost()
        total += IOCost(2, 100)
        total += IOCost(3, 50)
        assert total.page_accesses == 5
        assert total.bytes_read == 150


class TestPageManager:
    def test_read_counts_pages_and_bytes(self):
        manager = PageManager(page_size=4096)
        page = manager.allocate(1000)
        manager.read(page)
        assert manager.cost.page_accesses == 1
        assert manager.cost.bytes_read == 1000

    def test_multi_page_payload_spans(self):
        manager = PageManager(page_size=4096)
        big = manager.allocate(10_000)  # spans 3 pages
        manager.read(big)
        assert manager.cost.page_accesses == 3

    def test_read_bytes_derives_pages(self):
        manager = PageManager(page_size=1000)
        manager.read_bytes(2500)
        assert manager.cost.page_accesses == 3
        assert manager.cost.bytes_read == 2500

    def test_read_zero_bytes_is_free(self):
        manager = PageManager()
        manager.read_bytes(0)
        assert manager.cost.page_accesses == 0

    def test_reset_returns_previous(self):
        manager = PageManager()
        page = manager.allocate()
        manager.read(page)
        previous = manager.reset()
        assert previous.page_accesses == 1
        assert manager.cost.page_accesses == 0

    def test_resize(self):
        manager = PageManager(page_size=100)
        page = manager.allocate(50)
        manager.resize(page, 250)
        manager.read(page)
        assert manager.cost.page_accesses == 3

    def test_unknown_page_rejected(self):
        manager = PageManager()
        with pytest.raises(IndexError_):
            manager.read(999)
        with pytest.raises(IndexError_):
            manager.resize(999, 10)

    def test_negative_sizes_rejected(self):
        manager = PageManager()
        with pytest.raises(IndexError_):
            manager.allocate(-1)
        with pytest.raises(IndexError_):
            manager.read_bytes(-5)

    def test_total_accounting(self):
        manager = PageManager()
        manager.allocate(10)
        manager.allocate(20)
        assert manager.allocated_pages == 2
        assert manager.total_bytes() == 30

"""Concurrency: readers must always observe a consistent version.

The stress test runs N reader threads issuing 10-nn queries while a
writer thread interleaves adds and removes.  The writer records the
exact membership of every database version *before* publishing it, so
each reader can check its answer against the one version it pinned —
every result must be exact with respect to that consistent state (same
ids, same distances, canonically ordered), with no exceptions and no
torn reads in any thread.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.concurrency import RWLock
from repro.core.centroid import norm_weight
from repro.core.min_matching import min_matching_distance
from repro.db import SimilarityDatabase

CAPACITY = 3
DIM = 3


class TestRWLock:
    def test_readers_share_writers_exclude(self):
        lock = RWLock()
        state = {"readers": 0, "writers": 0, "max_readers": 0}
        guard = threading.Lock()
        errors = []

        def read_body():
            with lock.read():
                with guard:
                    state["readers"] += 1
                    state["max_readers"] = max(
                        state["max_readers"], state["readers"]
                    )
                    if state["writers"]:
                        errors.append("reader overlapped a writer")
                time.sleep(0.002)
                with guard:
                    state["readers"] -= 1

        def write_body():
            with lock.write():
                with guard:
                    state["writers"] += 1
                    if state["writers"] > 1 or state["readers"]:
                        errors.append("writer was not exclusive")
                time.sleep(0.002)
                with guard:
                    state["writers"] -= 1

        threads = [
            threading.Thread(target=read_body if i % 4 else write_body)
            for i in range(24)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "lock deadlocked"
        assert errors == []
        assert state["max_readers"] > 1, "readers never actually shared"

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        order = []
        release_first_reader = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read():
                order.append("r1-in")
                writer_waiting.wait(timeout=10)
                release_first_reader.wait(timeout=0.05)
            order.append("r1-out")

        def writer():
            # Signal just before blocking on the write lock; the tiny
            # sleep in second_reader makes the interleaving robust.
            writer_waiting.set()
            with lock.write():
                order.append("w")

        def second_reader():
            writer_waiting.wait(timeout=10)
            time.sleep(0.02)  # let the writer reach the wait loop
            with lock.read():
                order.append("r2")

        threads = [
            threading.Thread(target=fn)
            for fn in (first_reader, writer, second_reader)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        # Write preference: r2 arrived while the writer was waiting, so
        # it must run after the writer even though a read was active.
        assert order.index("w") < order.index("r2")


@pytest.mark.parametrize("backend", ["xtree", "scan"])
def test_readers_see_consistent_snapshots_under_writes(backend, rng):
    db = SimilarityDatabase(CAPACITY, backend=backend, index_capacity=4)

    def rand_set():
        return rng.integers(-6, 7, size=(int(rng.integers(1, CAPACITY + 1)), DIM)).astype(
            float
        )

    # Seed contents, then script the writer's whole mutation sequence up
    # front: history[v] is the exact membership at version v, published
    # *before* the mutation that creates v runs, so a reader that pins v
    # always finds its reference state.
    sets = {}
    history = {}
    for oid in range(14):
        sets[oid] = rand_set()
        db.add(oid, sets[oid])
    history[db.version] = frozenset(sets)

    script = []
    live = dict(sets)
    next_oid = 14
    for step in range(60):
        if step % 3 == 1 and len(live) > 6:
            victim = sorted(live)[step % len(live)]
            script.append(("remove", victim, None))
            del live[victim]
        else:
            arr = rand_set()
            script.append(("add", next_oid, arr))
            live[next_oid] = arr
            sets[next_oid] = arr
            next_oid += 1

    query = rand_set()
    weight = norm_weight(None)
    exact = {oid: min_matching_distance(query, arr, weight=weight) for oid, arr in sets.items()}

    errors = []
    stop = threading.Event()

    def writer():
        try:
            version = db.version
            membership = set(history[version])
            for op, oid, arr in script:
                if op == "add":
                    membership.add(oid)
                else:
                    membership.discard(oid)
                version += 1
                history[version] = frozenset(membership)
                if op == "add":
                    db.add(oid, arr)
                else:
                    assert db.remove(oid)
                time.sleep(0.0005)
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            errors.append(f"writer: {exc!r}")
        finally:
            stop.set()

    def reader():
        try:
            while not stop.is_set():
                with db.read_view() as view:
                    version = view.version
                    results, _ = view.knn_query(query, 10)
                    assert view.version == version, "version changed mid-view"
                expected_ids = history[version]
                want = sorted(
                    ((exact[oid], oid) for oid in expected_ids)
                )[:10]
                got = [(m.distance, m.object_id) for m in results]
                assert got == want, (
                    f"version {version}: got {got[:3]}..., want {want[:3]}..."
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(f"reader: {exc!r}")
            stop.set()

    readers = [threading.Thread(target=reader) for _ in range(4)]
    writer_thread = threading.Thread(target=writer)
    for t in readers:
        t.start()
    writer_thread.start()
    writer_thread.join(timeout=120)
    for t in readers:
        t.join(timeout=120)
        assert not t.is_alive(), "reader hung"
    assert not writer_thread.is_alive(), "writer hung"
    assert errors == []
    # The writer finished the whole script: final state is queryable and
    # exact.
    final, _ = db.knn_query(query, 10)
    want = sorted(((exact[oid], oid) for oid in history[db.version]))[:10]
    assert [(m.distance, m.object_id) for m in final] == want


def test_concurrent_mutations_serialize(rng):
    """Two writer threads interleave adds; every mutation must land and
    the version counter must count them exactly."""
    db = SimilarityDatabase(CAPACITY, backend="rstar", index_capacity=4)
    errors = []
    # Pre-generate inputs: the numpy Generator is not thread-safe.
    payloads = {
        oid: rng.integers(-6, 7, size=(1, DIM)).astype(float) for oid in range(50)
    }

    def add_range(start):
        try:
            for oid in range(start, start + 25):
                db.add(oid, payloads[oid])
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))

    threads = [threading.Thread(target=add_range, args=(s,)) for s in (0, 25)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    assert errors == []
    assert len(db) == 50
    assert db.version == 50
    assert db.object_ids() == list(range(50))

"""Sharded kill matrix: hard kills between per-shard checkpoints.

The sharded layer adds one genuinely new crash window to the durable
story: :meth:`ShardedSimilarityDatabase.checkpoint` walks the shards in
order, and each gap between two shard checkpoints is a moment where the
on-disk layout is *mixed* — shards ``0..i`` on their new generation,
shards ``i+1..`` on the old generation plus WAL tail.  The
``between-shard-checkpoints`` crash point fires in exactly those gaps
(``:n`` selects the gap), alongside the single-database points which
here fire inside whichever shard happens to be mutating.

The contract after recovery (``open_database`` on the root):

* the recovered contents equal a fresh build over ``plan[:M]`` for some
  ``M >= acked`` — every acknowledged mutation survives, shard
  generations never mix into a state no serial execution produced;
* the version vector is *consistent*: every shard holds exactly the
  oids the CRC routing assigns it, and all shards agree on the same
  plan prefix;
* knn/range answers are byte-identical to a single-shard fresh build
  of that prefix — the differential contract holds through a crash.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.db import (
    ShardedSimilarityDatabase,
    SimilarityDatabase,
    open_database,
    shard_of,
)
from repro.testing.faults import CRASH_ENV, CRASH_EXIT_CODE

from tests.test_db_durable import CAPACITY, fresh_build, make_plan, rand_set

SHARDS = 3

WORKER = """\
import json, os, sys
import numpy as np
from repro.db import ShardedSimilarityDatabase

dbdir, planfile, ackfile, backend = sys.argv[1:5]
with open(planfile) as handle:
    plan = json.load(handle)
db = ShardedSimilarityDatabase(
    plan["capacity"], shards=plan["shards"], backend=backend,
    durable=True, path=dbdir, fsync="always",
)
ack = open(ackfile, "w")
for i, (op, oid, arr) in enumerate(plan["steps"]):
    if op == "add":
        db.add(oid, np.asarray(arr, dtype=float))
    elif op == "remove":
        db.remove(oid)
    elif op == "update":
        db.update(oid, np.asarray(arr, dtype=float))
    elif op == "compact":
        db.compact()
    elif op == "checkpoint":
        db.checkpoint()
    ack.write(f"{i}\\n")
    ack.flush()
    os.fsync(ack.fileno())
db.close()
ack.close()
"""

# Gap :1 and :2 are both real interleavings for K=3 (shard 0 new /
# 1, 2 old, and shards 0, 1 new / 2 old); the single-database points
# fire inside whichever shard the routed mutation lands on.
CRASH_SPECS = {
    "first-gap": "between-shard-checkpoints",
    "second-gap": "between-shard-checkpoints:2",
    "wal-append": "after-wal-append:7",
    "checkpoint-swap": "mid-checkpoint-swap",
    "snapshot-write": "mid-snapshot-write",
}


def run_worker(tmp_path, plan, backend, crash_spec=None):
    worker = tmp_path / "worker.py"
    worker.write_text(WORKER)
    planfile = tmp_path / "plan.json"
    planfile.write_text(
        json.dumps(
            {
                "capacity": CAPACITY,
                "shards": SHARDS,
                "steps": [
                    [op, oid, None if arr is None else arr.tolist()]
                    for op, oid, arr in plan
                ],
            }
        )
    )
    ackfile = tmp_path / "acks"
    dbdir = tmp_path / "db"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    env.pop(CRASH_ENV, None)
    if crash_spec is not None:
        env[CRASH_ENV] = crash_spec
    proc = subprocess.run(
        [sys.executable, str(worker), str(dbdir), str(planfile),
         str(ackfile), backend],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    acked = (
        len(ackfile.read_text().splitlines()) if ackfile.exists() else 0
    )
    return proc, dbdir, acked


def sharded_contents(db):
    return {oid: db.get(oid) for oid in db.object_ids()}


def assert_consistent_vector(recovered, reference_single, rng):
    """The recovered layout is one coherent database: routing holds
    shard by shard, and scatter-gather answers are byte-identical to
    the single-shard reference."""
    assert recovered.n_shards == SHARDS
    for i, shard in enumerate(recovered.shards):
        for oid in shard.object_ids():
            assert shard_of(oid, SHARDS) == i, (
                f"oid {oid} recovered into shard {i}, "
                f"routing says {shard_of(oid, SHARDS)}"
            )
    for _ in range(3):
        query = rand_set(rng)
        got, _ = recovered.knn_query(query, 5)
        want, _ = reference_single.knn_query(query, 5)
        assert [(m.object_id, m.distance) for m in got] == [
            (m.object_id, m.distance) for m in want
        ]
        got_r, _ = recovered.range_query(query, 6.0)
        want_r, _ = reference_single.range_query(query, 6.0)
        assert [(m.object_id, m.distance) for m in got_r] == [
            (m.object_id, m.distance) for m in want_r
        ]


def matches_some_prefix(recovered, state_plan, backend, floor, rng) -> bool:
    contents = sharded_contents(recovered)
    for upto in range(floor, len(state_plan) + 1):
        reference = fresh_build(state_plan[:upto], backend)
        if sorted(contents) != sorted(reference._sets):
            continue
        if all(
            np.array_equal(contents[oid], reference._sets[oid])
            for oid in reference._sets
        ):
            assert_consistent_vector(recovered, reference, rng)
            return True
    return False


@pytest.mark.parametrize("backend", ["xtree", "scan"])
@pytest.mark.parametrize("point", sorted(CRASH_SPECS))
def test_kill_and_recover(point, backend, tmp_path, rng):
    plan = make_plan(rng)
    proc, dbdir, acked = run_worker(
        tmp_path, plan, backend, crash_spec=CRASH_SPECS[point]
    )
    assert proc.returncode == CRASH_EXIT_CODE, (
        f"worker did not die at {point}: rc={proc.returncode}\n{proc.stderr}"
    )
    assert acked < len(plan), "crash fired only after the whole plan ran"
    recovered = open_database(dbdir)
    assert isinstance(recovered, ShardedSimilarityDatabase)
    assert recovered.durable
    assert len(recovered.last_recovery) == SHARDS
    state_plan = [s for s in plan if s[0] != "checkpoint"]
    acked_state = len([s for s in plan[:acked] if s[0] != "checkpoint"])
    assert matches_some_prefix(
        recovered, state_plan, backend, acked_state, rng
    ), (
        f"recovered sharded state after {point} kill matches no prefix "
        f">= the {acked} acknowledged mutations"
    )
    recovered.close()


@pytest.mark.parametrize("backend", ["xtree", "scan"])
def test_clean_run_control(backend, tmp_path, rng):
    """No crash spec: the worker completes and recovery equals a fresh
    single-shard build over the whole plan — the baseline the kill
    matrix is measured against."""
    plan = make_plan(rng)
    proc, dbdir, acked = run_worker(tmp_path, plan, backend)
    assert proc.returncode == 0, proc.stderr
    assert acked == len(plan)
    recovered = open_database(dbdir)
    assert all(not report.degraded for report in recovered.last_recovery)
    state_plan = [s for s in plan if s[0] != "checkpoint"]
    reference = fresh_build(state_plan, backend)
    contents = sharded_contents(recovered)
    assert sorted(contents) == sorted(reference._sets)
    for oid in reference._sets:
        np.testing.assert_array_equal(contents[oid], reference._sets[oid])
    assert_consistent_vector(recovered, reference, rng)
    recovered.close()


def test_gap_kill_leaves_mixed_generations(tmp_path, rng):
    """The first-gap kill really does land mid-checkpoint: shard 0 has
    checkpointed (its WAL tail is empty or sealed) while a later shard
    still carries its tail — and recovery reconciles them anyway."""
    plan = make_plan(rng)
    proc, dbdir, acked = run_worker(
        tmp_path, plan, "xtree", crash_spec="between-shard-checkpoints"
    )
    assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
    checkpoint_step = next(
        i for i, step in enumerate(plan) if step[0] == "checkpoint"
    )
    # The kill fired inside the checkpoint step, before its ack.
    assert acked == checkpoint_step
    recovered = open_database(dbdir)
    state_plan = [s for s in plan if s[0] != "checkpoint"]
    acked_state = len(
        [s for s in plan[:acked] if s[0] != "checkpoint"]
    )
    assert matches_some_prefix(recovered, state_plan, "xtree", acked_state, rng)
    recovered.close()

"""Tests for the persistence layer (OFF, STL, voxel grids, database)."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.geometry.mesh import box_mesh, uv_sphere_mesh
from repro.io.database import ObjectDatabase, StoredObject
from repro.io.off import read_off, write_off
from repro.io.stl import read_stl, write_stl_ascii, write_stl_binary
from repro.io.vox import load_grid, save_grid
from repro.normalize.pose import PoseInfo
from repro.voxel.grid import VoxelGrid


class TestOff:
    def test_roundtrip(self, tmp_path):
        mesh = uv_sphere_mesh(radius=1.0, rings=6, segments=8)
        path = tmp_path / "sphere.off"
        write_off(mesh, path)
        loaded = read_off(path)
        assert np.allclose(loaded.vertices, mesh.vertices)
        assert np.array_equal(loaded.faces, mesh.faces)

    def test_counts_on_magic_line(self, tmp_path):
        path = tmp_path / "inline.off"
        path.write_text("OFF 3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n")
        mesh = read_off(path)
        assert mesh.num_vertices == 3 and mesh.num_faces == 1

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "commented.off"
        path.write_text(
            "OFF\n# a comment\n3 1 0\n0 0 0 # inline\n1 0 0\n0 1 0\n3 0 1 2\n"
        )
        assert read_off(path).num_faces == 1

    def test_quads_fan_triangulated(self, tmp_path):
        path = tmp_path / "quad.off"
        path.write_text(
            "OFF\n4 1 0\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n"
        )
        assert read_off(path).num_faces == 2

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text("OFF\nnot numbers\n")
        with pytest.raises(StorageError):
            read_off(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "short.off"
        path.write_text("OFF\n5 2 0\n0 0 0\n")
        with pytest.raises(StorageError):
            read_off(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            read_off(tmp_path / "nope.off")


class TestStl:
    def test_ascii_roundtrip(self, tmp_path):
        mesh = box_mesh()
        path = tmp_path / "box.stl"
        write_stl_ascii(mesh, path)
        loaded = read_stl(path)
        assert loaded.num_faces == mesh.num_faces
        assert loaded.surface_area() == pytest.approx(mesh.surface_area())

    def test_binary_roundtrip(self, tmp_path):
        mesh = uv_sphere_mesh(rings=5, segments=6)
        path = tmp_path / "sphere.stl"
        write_stl_binary(mesh, path)
        loaded = read_stl(path)
        assert loaded.num_faces == mesh.num_faces
        assert loaded.surface_area() == pytest.approx(mesh.surface_area(), rel=1e-5)

    def test_binary_detected_despite_solid_prefix(self, tmp_path):
        mesh = box_mesh()
        path = tmp_path / "tricky.stl"
        write_stl_binary(mesh, path)
        blob = bytearray(path.read_bytes())
        blob[:5] = b"solid"
        path.write_bytes(bytes(blob))
        assert read_stl(path).num_faces == mesh.num_faces

    def test_truncated_binary_rejected(self, tmp_path):
        path = tmp_path / "trunc.stl"
        path.write_bytes(b"\0" * 50)
        with pytest.raises(StorageError):
            read_stl(path)


class TestVoxPersistence:
    def test_roundtrip(self, tmp_path, tire_grid):
        path = tmp_path / "tire.npz"
        save_grid(tire_grid, path)
        loaded = load_grid(path)
        assert loaded == tire_grid

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(StorageError):
            load_grid(path)


class TestObjectDatabase:
    def _sample_db(self, tire_grid, lshape_grid):
        db = ObjectDatabase()
        db.add(
            StoredObject(
                name="tire-1",
                family="tire",
                class_id=0,
                grid=tire_grid,
                pose=PoseInfo((1.0, 1.0, 0.5), (0, 0, 0)),
            )
        )
        db.add(
            StoredObject(
                name="bracket-1",
                family="bracket",
                class_id=1,
                grid=lshape_grid,
                pose=PoseInfo((2.0, 1.0, 1.0), (1, 0, 0)),
            )
        )
        return db

    def test_collection_interface(self, tire_grid, lshape_grid):
        db = self._sample_db(tire_grid, lshape_grid)
        assert len(db) == 2
        assert db[0].name == "tire-1"
        assert db.names() == ["tire-1", "bracket-1"]
        assert np.array_equal(db.labels(), [0, 1])

    def test_features_roundtrip(self, tire_grid, lshape_grid, rng):
        db = self._sample_db(tire_grid, lshape_grid)
        features = [rng.normal(size=(3, 6)), rng.normal(size=(2, 6))]
        db.set_features("vector-set(k=7)", features)
        assert db.has_features("vector-set(k=7)")
        loaded = db.get_features("vector-set(k=7)")
        assert np.allclose(loaded[1], features[1])
        assert db[0].feature_nbytes("vector-set(k=7)") == 3 * 6 * 8

    def test_feature_count_mismatch_rejected(self, tire_grid, lshape_grid):
        db = self._sample_db(tire_grid, lshape_grid)
        with pytest.raises(StorageError):
            db.set_features("x", [np.zeros(3)])

    def test_missing_features_rejected(self, tire_grid, lshape_grid):
        db = self._sample_db(tire_grid, lshape_grid)
        with pytest.raises(StorageError):
            db.get_features("nope")
        with pytest.raises(StorageError):
            db[0].feature_nbytes("nope")

    def test_save_load_roundtrip(self, tmp_path, tire_grid, lshape_grid, rng):
        db = self._sample_db(tire_grid, lshape_grid)
        db.set_features("m", [rng.normal(size=(2, 6)), rng.normal(size=(1, 6))])
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = ObjectDatabase.load(path)
        assert len(loaded) == 2
        assert loaded[0].name == "tire-1"
        assert loaded[1].pose.scale_factors == (2.0, 1.0, 1.0)
        assert loaded[0].grid == tire_grid
        assert np.allclose(loaded[0].features["m"], db[0].features["m"])

    def test_load_corrupt_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"garbage")
        with pytest.raises(StorageError):
            ObjectDatabase.load(path)

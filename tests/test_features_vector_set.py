"""Tests for the vector set model (the paper's contribution)."""

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.features.cover_sequence import CoverSequenceModel
from repro.features.vector_set_model import VectorSetModel
from repro.geometry.sdf import Box
from repro.voxel.voxelize import voxelize_solid


class TestVectorSetModel:
    def test_no_dummy_padding(self, lshape_grid):
        """The key storage property of Section 4.1: short sequences stay
        short."""
        rows = VectorSetModel(k=7).extract(lshape_grid)
        assert rows.shape == (2, 6)

    def test_rows_match_cover_model_blocks(self, tire_grid):
        """The vector set contains exactly the cover model's 6-d blocks."""
        rows = VectorSetModel(k=7).extract(tire_grid)
        flat = CoverSequenceModel(k=7).extract(tire_grid).reshape(7, 6)
        assert np.allclose(flat[: len(rows)], rows)
        assert np.allclose(flat[len(rows) :], 0.0)

    def test_cardinality_bounded_by_k(self, tire_grid):
        for k in (1, 3, 5, 7):
            rows = VectorSetModel(k=k).extract(tire_grid)
            assert 1 <= len(rows) <= k

    def test_element_dimension_is_six(self, tire_grid):
        model = VectorSetModel(k=7)
        assert model.dimension(15) == 6
        assert model.extract(tire_grid).shape[1] == 6

    def test_identical_shapes_zero_distance(self, tire_grid):
        a = VectorSetModel(k=7).extract(tire_grid)
        b = VectorSetModel(k=7).extract(tire_grid.copy())
        assert min_matching_distance(a, b) == pytest.approx(0.0)

    def test_similar_shapes_closer_than_different(self):
        """Two slightly different plates are closer to each other than to
        a cube — the metric sanity the clustering relies on."""
        model = VectorSetModel(k=7)
        plate_a = model.extract(voxelize_solid(Box(size=(2.0, 1.0, 0.2)), 15))
        plate_b = model.extract(voxelize_solid(Box(size=(2.1, 0.95, 0.22)), 15))
        cube = model.extract(voxelize_solid(Box(size=(1.0, 1.0, 1.0)), 15))
        close = min_matching_distance(plate_a, plate_b)
        far = min_matching_distance(plate_a, cube)
        assert close < far

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            VectorSetModel(k=0)

    def test_name_mentions_k(self):
        assert "7" in VectorSetModel(k=7).name

"""Trace export (``repro.obs.export``) and metrics exposition.

The cross-process guarantee: a fan-out run — CLI root span, parent
spans, pool-worker spans — reassembles into a *single* rooted causal
tree under one trace id, and renders as valid Chrome trace-event JSON.
Plus the OpenMetrics text format of ``MetricsRegistry.expose_prometheus``
and the ``repro obs export`` / ``repro obs expose`` CLI round trips.
"""

import json

import pytest

from repro import obs
from repro.obs import querylog
from repro.obs.export import assemble_tree, chrome_trace, load_trace, query_records
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import span
from repro.obs.tracectx import (
    clear_trace_context,
    new_trace_id,
    set_trace_context,
    trace_context,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    clear_trace_context()
    querylog.reset()
    yield
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    clear_trace_context()
    querylog.reset()


@pytest.fixture
def enabled(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable()
    obs.configure_sink(trace)
    yield trace
    obs.close_sink()


def _worker_task(index):
    """Pool work unit: one span per task (module-level to pickle)."""
    with span("worker.task", index=index):
        return index * 2


class TestTraceContext:
    def test_trace_context_mints_and_restores(self):
        assert obs.current_trace_id() is None
        with trace_context() as trace_id:
            assert obs.current_trace_id() == trace_id
            with trace_context("override") as inner:
                assert inner == "override"
            assert obs.current_trace_id() == trace_id
        assert obs.current_trace_id() is None

    def test_events_and_spans_stamp_trace(self, enabled):
        set_trace_context(new_trace_id())
        trace_id = obs.current_trace_id()
        with span("outer"):
            obs.emit("marker", note=1)
        clear_trace_context()
        obs.emit("untraced")
        obs.close_sink()
        records = [json.loads(line) for line in enabled.read_text().splitlines()]
        by_event = {r["event"]: r for r in records}
        assert by_event["span_start"]["trace"] == trace_id
        assert by_event["span_end"]["trace"] == trace_id
        assert by_event["marker"]["trace"] == trace_id
        assert "trace" not in by_event["untraced"]


class TestTreeAssembly:
    def test_parallel_fanout_reassembles_into_one_tree(self, enabled):
        """The acceptance bar: a root span plus pool workers — separate
        processes — come back as one rooted tree under one trace id."""
        from repro.parallel import pool_map

        set_trace_context(new_trace_id())
        with span("cli.run"):
            results = pool_map(_worker_task, list(range(4)), 2)
        clear_trace_context()
        assert results == [0, 2, 4, 6]

        obs.close_sink()
        records = load_trace(enabled)
        tree = assemble_tree(records)
        assert len(tree["roots"]) == 1
        assert len(tree["trace_ids"]) == 1
        root = tree["nodes"][tree["roots"][0]]
        assert root["name"] == "cli.run"
        # All four worker spans parent (across the process boundary)
        # to the root span.
        children = [tree["nodes"][c] for c in root["children"]]
        assert [c["name"] for c in children].count("worker.task") == 4
        # The spans really came from other processes.
        import os

        pids = {int(n["id"].split("-", 1)[0]) for n in tree["nodes"].values()}
        assert len(pids) > 1 and os.getpid() in pids

    def test_orphan_spans_become_roots(self):
        records = [
            {"event": "span_end", "id": "1-1", "name": "a", "parent": None,
             "seconds": 0.1, "ts": 10.0},
            {"event": "span_end", "id": "1-2", "name": "b", "parent": "9-9",
             "seconds": 0.1, "ts": 10.0},
        ]
        tree = assemble_tree(records)
        assert tree["roots"] == ["1-1", "1-2"]

    def test_query_records_filter(self):
        records = [{"event": "query", "kind": "knn"}, {"event": "span_end"}]
        assert query_records(records) == [{"event": "query", "kind": "knn"}]


class TestChromeTrace:
    def test_spans_become_complete_events(self, enabled):
        with span("outer"):
            with span("inner"):
                obs.emit("query", kind="knn", n=5)
        obs.close_sink()
        doc = chrome_trace(load_trace(enabled))
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert event["dur"] >= 0.0 and event["ts"] > 0.0
            assert event["args"]["id"]
        (marker,) = instants
        assert marker["name"] == "query" and marker["s"] == "p"
        assert marker["args"]["kind"] == "knn"
        # ts is the *start* (end minus duration), in microseconds.
        outer = next(e for e in complete if e["name"] == "outer")
        inner = next(e for e in complete if e["name"] == "inner")
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]
        # The whole document is JSON-serializable as-is.
        json.dumps(doc)


class TestPrometheusExposition:
    def test_exposition_format(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("query.count").inc(3)
        reg.gauge("db.size").set(41)
        hist = reg.histogram("query.seconds")
        for value in (0.0005, 0.02, 0.02, 5.0):
            hist.observe(value)
        text = reg.expose_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_query_count_total counter" in lines
        assert "repro_query_count_total 3" in lines
        assert "repro_db_size 41" in lines
        assert "# TYPE repro_query_seconds histogram" in lines
        # Buckets are cumulative and +Inf equals the observation count.
        bucket_values = [
            float(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("repro_query_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert 'repro_query_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_query_seconds_count 4" in lines
        assert any(line.startswith("repro_query_seconds_sum") for line in lines)
        assert lines[-1] == "# EOF"

    def test_names_are_sanitized(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("span.a-b.c/d").inc()
        text = reg.expose_prometheus()
        assert "repro_span_a_b_c_d_total 1" in text

    def test_bucket_counts_merge_exactly_across_snapshots(self):
        one = MetricsRegistry(enabled=True)
        two = MetricsRegistry(enabled=True)
        for reg, values in ((one, (0.001, 0.5)), (two, (0.001, 30.0))):
            for value in values:
                reg.histogram("h").observe(value)
        one.merge(two.snapshot())
        merged = one.histogram("h")
        assert sum(merged.bucket_counts) == 4
        assert merged.count == 4

    def test_pre_bucket_snapshots_still_merge(self):
        reg = MetricsRegistry(enabled=True)
        reg.merge(
            {"histograms": {"h": {"count": 2, "sum": 3.0, "min": 1.0,
                                  "max": 2.0, "samples": [1.0, 2.0]}}}
        )
        hist = reg.histogram("h")
        assert hist.count == 2
        assert sum(hist.bucket_counts) == 0  # reservoir-only fallback


class TestObsCli:
    def test_export_round_trip(self, enabled, tmp_path, capsys):
        from repro.cli import main

        with trace_context():
            with span("cli.test"):
                obs.emit("query", kind="knn")
        obs.close_sink()
        obs.disable()
        out = tmp_path / "trace.chrome.json"
        code = main(["obs", "export", str(enabled), "--out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "cli.test" in names and "query" in names
        stdout = capsys.readouterr().out
        assert "1 root(s)" in stdout and "1 trace id(s)" in stdout

    def test_export_empty_trace_fails(self, tmp_path):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "export", str(empty)]) == 2

    def test_expose_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        reg = MetricsRegistry(enabled=True)
        reg.counter("query.count").inc(7)
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(reg.snapshot(include_events=False)))
        out = tmp_path / "metrics.prom"
        code = main(
            ["obs", "expose", "--metrics", str(metrics), "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "repro_query_count_total 7" in text
        assert text.rstrip().endswith("# EOF")

    def test_expose_to_stdout(self, tmp_path, capsys):
        from repro.cli import main

        reg = MetricsRegistry(enabled=True)
        reg.gauge("db.size").set(3)
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(reg.snapshot(include_events=False)))
        assert main(["obs", "expose", "--metrics", str(metrics)]) == 0
        assert "repro_db_size 3" in capsys.readouterr().out

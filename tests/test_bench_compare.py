"""The bench regression sentinel (``repro.bench.compare``).

``repro bench compare BASE HEAD`` is the CI gate: identical files pass,
a synthetic 20% slowdown fails with exit 1, higher-better ratios
(speedup/recall) regress in the opposite direction, and sub-noise-floor
timings are never judged.
"""

import json

import pytest

from repro.bench.compare import compare_bench, render_comparison
from repro.bench.schema import write_bench
from repro.cli import main
from repro.exceptions import ReproError


def bench_file(tmp_path, name, records, suite="index_scale"):
    return write_bench(tmp_path / name, records, suite=suite, seed=42)


BASE_RECORDS = [
    {"op": "knn", "backend": "xtree", "n": 1000, "k": 10,
     "seconds": 0.100, "speedup": 4.0},
    {"op": "knn", "backend": "scan", "n": 1000, "k": 10,
     "seconds": 0.400},
    {"op": "build", "backend": "xtree", "n": 1000,
     "build_seconds": 0.050},
]


def slowed(records, factor):
    out = []
    for record in records:
        copy = dict(record)
        for key in copy:
            if key == "seconds" or key.endswith("_seconds"):
                copy[key] *= factor
        out.append(copy)
    return out


class TestCompare:
    def test_identical_files_pass(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", BASE_RECORDS)
        comparison = compare_bench(base, head)
        assert comparison.ok
        assert not comparison.missing_in_head
        judged = [d for d in comparison.deltas if d.skipped is None]
        assert judged and all(d.change == 0.0 for d in judged)

    def test_twenty_percent_slowdown_regresses(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", slowed(BASE_RECORDS, 1.20))
        comparison = compare_bench(base, head, threshold=0.10)
        assert not comparison.ok
        metrics = {(d.key, d.metric) for d in comparison.regressions}
        # Every timing regressed; the unchanged speedup ratio did not.
        assert len(metrics) == 3
        assert all(m in ("seconds", "build_seconds") for _, m in metrics)
        text = render_comparison(comparison, threshold=0.10)
        assert "REGRESSION" in text and "20.0% slower" in text

    def test_speedup_loss_is_higher_better_regression(self, tmp_path):
        head_records = [dict(r) for r in BASE_RECORDS]
        head_records[0]["speedup"] = 2.0  # halved
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", head_records)
        comparison = compare_bench(base, head, fields=["speedup"])
        (delta,) = comparison.regressions
        assert delta.metric == "speedup"
        assert delta.change == pytest.approx(0.5)
        assert not delta.lower_better
        assert "50.0% lower" in delta.describe()

    def test_speedup_gain_is_not_a_regression(self, tmp_path):
        head_records = [dict(r) for r in BASE_RECORDS]
        head_records[0]["speedup"] = 8.0
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", head_records)
        assert compare_bench(base, head).ok

    def test_noise_floor_skips_tiny_timings(self, tmp_path):
        tiny = [{"op": "knn", "backend": "scan", "n": 10, "seconds": 0.0004}]
        base = bench_file(tmp_path, "base.json", tiny)
        head = bench_file(tmp_path, "head.json", slowed(tiny, 3.0))
        comparison = compare_bench(base, head)  # 3x slower but sub-floor
        assert comparison.ok
        (delta,) = comparison.deltas
        assert "noise floor" in delta.skipped

    def test_fields_restricts_judged_metrics(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", slowed(BASE_RECORDS, 2.0))
        comparison = compare_bench(base, head, fields=["speedup"])
        assert comparison.ok  # the 2x slowdown is not being judged
        assert {d.metric for d in comparison.deltas} == {"speedup"}

    def test_duplicate_keys_rejected(self, tmp_path):
        records = [BASE_RECORDS[0], dict(BASE_RECORDS[0])]
        base = bench_file(tmp_path, "base.json", records)
        head = bench_file(tmp_path, "head.json", BASE_RECORDS[:1])
        with pytest.raises(ReproError, match="duplicate bench key"):
            compare_bench(base, head)

    def test_missing_records_reported(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", BASE_RECORDS[:1])
        comparison = compare_bench(base, head)
        assert len(comparison.missing_in_head) == 2
        text = render_comparison(comparison)
        assert "missing in head" in text


class TestCompareCli:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", BASE_RECORDS)
        code = main(["bench", "compare", str(base), str(head)])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_slowdown_exits_one(self, tmp_path, capsys):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(
            tmp_path, "head.json", slowed(BASE_RECORDS, 1.20)
        )
        code = main(["bench", "compare", str(base), str(head)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag_tolerates_slowdown(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", slowed(BASE_RECORDS, 1.20))
        code = main(
            ["bench", "compare", str(base), str(head), "--threshold", "0.5"]
        )
        assert code == 0

    def test_missing_in_head_fails_unless_allowed(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        head = bench_file(tmp_path, "head.json", BASE_RECORDS[:1])
        assert main(["bench", "compare", str(base), str(head)]) == 1
        assert main(
            ["bench", "compare", str(base), str(head), "--allow-missing"]
        ) == 0

    def test_nothing_comparable_exits_two(self, tmp_path):
        base = bench_file(
            tmp_path, "base.json",
            [{"op": "knn", "backend": "scan", "n": 10, "seconds": 0.0001}],
        )
        head = bench_file(
            tmp_path, "head.json",
            [{"op": "knn", "backend": "scan", "n": 10, "seconds": 0.0002}],
        )
        assert main(["bench", "compare", str(base), str(head)]) == 2

    def test_wrong_arity_exits_two(self, tmp_path):
        base = bench_file(tmp_path, "base.json", BASE_RECORDS)
        assert main(["bench", "compare", str(base)]) == 2

    def test_match_and_fields_flags(self, tmp_path, capsys):
        records = [
            {"op": "pareto", "backend": "xtree", "budget": 64, "n": 500,
             "recall": 0.95},
            {"op": "pareto", "backend": "xtree", "budget": 128, "n": 500,
             "recall": 0.99},
        ]
        degraded = [dict(r, recall=r["recall"] - 0.4) for r in records]
        base = bench_file(tmp_path, "base.json", records, suite="pareto")
        head = bench_file(tmp_path, "head.json", degraded, suite="pareto")
        code = main(
            ["bench", "compare", str(base), str(head),
             "--match", "op,backend,budget", "--fields", "recall",
             "--verbose"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("REGRESSION") == 2 and "recall" in out

    def test_legacy_bare_list_files_compare(self, tmp_path):
        # PR 2/3/7-era files are bare lists; the sentinel still reads them.
        base = tmp_path / "legacy_base.json"
        head = tmp_path / "legacy_head.json"
        base.write_text(json.dumps(BASE_RECORDS))
        head.write_text(json.dumps(slowed(BASE_RECORDS, 1.5)))
        assert main(["bench", "compare", str(base), str(head)]) == 1

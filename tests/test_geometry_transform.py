"""Tests for affine transforms and the cube symmetry group."""

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.transform import (
    Transform,
    reflection_matrix,
    rotation_matrices_90,
    rotation_matrix,
    symmetry_matrices,
)


class TestRotationMatrix:
    def test_z_quarter_turn_maps_x_to_y(self):
        mat = rotation_matrix("z", np.pi / 2)
        assert np.allclose(mat @ [1, 0, 0], [0, 1, 0])

    def test_arbitrary_axis_is_orthogonal(self):
        mat = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
        assert np.allclose(mat @ mat.T, np.eye(3))
        assert np.isclose(np.linalg.det(mat), 1.0)

    def test_rotation_preserves_axis(self):
        axis = np.array([1.0, 1.0, 0.0])
        mat = rotation_matrix(axis, 1.2345)
        assert np.allclose(mat @ (axis / np.linalg.norm(axis)), axis / np.linalg.norm(axis))

    def test_zero_axis_rejected(self):
        with pytest.raises(GeometryError):
            rotation_matrix(np.zeros(3), 1.0)

    def test_unknown_axis_name_rejected(self):
        with pytest.raises(GeometryError):
            rotation_matrix("w", 1.0)


class TestSymmetryGroup:
    def test_24_proper_rotations(self):
        mats = rotation_matrices_90()
        assert len(mats) == 24

    def test_all_are_signed_permutations_with_det_plus_one(self):
        for mat in rotation_matrices_90():
            assert np.allclose(np.abs(mat).sum(axis=0), 1)
            assert np.allclose(np.abs(mat).sum(axis=1), 1)
            assert np.isclose(np.linalg.det(mat), 1.0)

    def test_group_closure(self):
        mats = rotation_matrices_90()
        keys = {np.rint(m).astype(int).tobytes() for m in mats}
        for a in mats[:6]:
            for b in mats[:6]:
                assert np.rint(a @ b).astype(int).tobytes() in keys

    def test_48_with_reflections(self):
        mats = symmetry_matrices(include_reflections=True)
        assert len(mats) == 48
        dets = sorted(round(float(np.linalg.det(m))) for m in mats)
        assert dets.count(-1) == 24 and dets.count(1) == 24

    def test_reflection_matrix_flips_one_axis(self):
        mat = reflection_matrix("y")
        assert np.allclose(mat @ [1, 2, 3], [1, -2, 3])


class TestTransform:
    def test_translation_roundtrip(self):
        t = Transform.translation([1.0, -2.0, 0.5])
        point = np.array([3.0, 4.0, 5.0])
        assert np.allclose(t.inverse().apply(t.apply(point)), point)

    def test_composition_order(self):
        rotate = Transform.rotation("z", np.pi / 2)
        shift = Transform.translation([1.0, 0.0, 0.0])
        composed = shift @ rotate  # rotate first, then shift
        assert np.allclose(composed.apply([1.0, 0.0, 0.0]), [1.0, 1.0, 0.0])

    def test_scaling_anisotropic(self):
        t = Transform.scaling([2.0, 3.0, 0.5])
        assert np.allclose(t.apply([1.0, 1.0, 1.0]), [2.0, 3.0, 0.5])

    def test_apply_batch(self):
        t = Transform.translation([1.0, 0.0, 0.0])
        pts = np.zeros((5, 3))
        assert np.allclose(t.apply(pts)[:, 0], 1.0)

    def test_singular_inverse_rejected(self):
        t = Transform(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(GeometryError):
            t.inverse()

    def test_bad_shapes_rejected(self):
        with pytest.raises(GeometryError):
            Transform(np.eye(2), np.zeros(3))
        with pytest.raises(GeometryError):
            Transform(np.eye(3), np.zeros(2))

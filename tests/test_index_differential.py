"""Stateful differential testing of the four access methods.

A hypothesis rule machine interleaves inserts, deletes, range queries
and k-nn queries and asserts that the X-tree, the R*-tree, the M-tree
and the linear scan return *identical* results at every step — same
ids, same distances, same order.  Integer coordinates make every
distance exactly representable, so equality is literal, not
approximate: all four implementations compute ``sqrt`` of the same
exact integer sum of squares, and ties resolve canonically by
ascending object id in each of them.

``check_invariants()`` runs on every tree after every mutation, so a
structural violation (MBR containment, fanout bounds, supernode sizing,
covering radii) is caught at the step that introduced it, with
hypothesis shrinking the workload to a minimal reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.index import MTree, RStarTree, SequentialScan, XTree

DIMENSION = 3

coordinates = st.integers(min_value=-32, max_value=32)
points = st.tuples(*[coordinates] * DIMENSION)


def euclidean(a, b):
    return float(np.linalg.norm(np.asarray(a, float) - np.asarray(b, float)))


class IndexDifferentialMachine(RuleBasedStateMachine):
    """All four access methods must agree with the model and each other."""

    def __init__(self):
        super().__init__()
        # Small capacities force splits (and supernode creation for the
        # X-tree: max_overlap=0.0 makes every overlapping split fail).
        self.rstar = RStarTree(DIMENSION, capacity=4)
        self.xtree = XTree(
            DIMENSION, capacity=4, max_overlap=0.0, max_supernode_factor=8
        )
        self.mtree = MTree(euclidean, capacity=4)
        self.scan = SequentialScan(DIMENSION)
        self.trees = [self.rstar, self.xtree, self.mtree, self.scan]
        self.model: dict[int, tuple[int, ...]] = {}
        self.next_oid = 0

    # -- mutations ---------------------------------------------------------

    def _check_all(self):
        for tree in (self.rstar, self.xtree, self.mtree):
            tree.check_invariants()
        # Every mutation invalidates the cached array core; re-densify
        # and structurally verify the fresh node tables as well.
        for tree in self.trees:
            tree.dense_core().check_invariants()

    @rule(point=points)
    def insert(self, point):
        oid = self.next_oid
        self.next_oid += 1
        arr = np.asarray(point, dtype=float)
        for tree in self.trees:
            tree.insert(arr, oid)
        self.model[oid] = point
        self._check_all()

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)), label="victim")
        point = np.asarray(self.model.pop(oid), dtype=float)
        for tree in self.trees:
            assert tree.delete(point, oid) is True
        self._check_all()

    @precondition(lambda self: self.model)
    @rule(data=st.data(), point=points)
    def delete_absent(self, data, point):
        """Deleting an id that is not stored must be a detected no-op."""
        oid = self.next_oid + 1000  # never assigned
        arr = np.asarray(point, dtype=float)
        for tree in self.trees:
            assert tree.delete(arr, oid) is False
        self._check_all()

    # -- queries -----------------------------------------------------------

    def _expected(self, center):
        pairs = [(euclidean(p, center), oid) for oid, p in self.model.items()]
        pairs.sort()
        return pairs

    @precondition(lambda self: self.model)
    @rule(center=points, data=st.data())
    def knn_agrees(self, center, data):
        k = data.draw(
            st.integers(min_value=1, max_value=len(self.model) + 2), label="k"
        )
        arr = np.asarray(center, dtype=float)
        expected = [
            (oid, dist) for dist, oid in self._expected(center)[:k]
        ]
        for tree in self.trees:
            assert tree.knn(arr, k) == expected, type(tree).__name__
            core = tree.dense_core()
            assert core.knn(arr, k) == expected, type(core).__name__
            assert core.knn_many([arr, arr], k) == [expected, expected], (
                type(core).__name__
            )

    @precondition(lambda self: self.model)
    @rule(center=points, radius=st.integers(min_value=0, max_value=40))
    def range_agrees(self, center, radius):
        arr = np.asarray(center, dtype=float)
        expected_ids = sorted(
            oid for dist, oid in self._expected(center) if dist <= radius
        )
        assert sorted(self.rstar.range_search(arr, radius)) == expected_ids
        assert sorted(self.xtree.range_search(arr, radius)) == expected_ids
        assert sorted(self.scan.range_search(arr, radius)) == expected_ids
        mtree_pairs = self.mtree.range_search(arr, float(radius))
        assert sorted(oid for oid, _ in mtree_pairs) == expected_ids
        for oid, dist in mtree_pairs:
            assert dist == euclidean(self.model[oid], center)

    @precondition(lambda self: self.model)
    @rule(center=points)
    def ranking_agrees(self, center):
        """incremental_nearest yields the full canonical ranking."""
        arr = np.asarray(center, dtype=float)
        expected = [(oid, dist) for dist, oid in self._expected(center)]
        for tree in (self.rstar, self.xtree, self.scan):
            assert list(tree.incremental_nearest(arr)) == expected, (
                type(tree).__name__
            )
            assert list(tree.dense_core().incremental_nearest(arr)) == (
                expected
            ), type(tree).__name__

    # -- global coherence --------------------------------------------------

    @invariant()
    def sizes_agree(self):
        for tree in self.trees:
            assert tree.size == len(self.model), type(tree).__name__


TestIndexDifferential = IndexDifferentialMachine.TestCase


@pytest.mark.parametrize("seed", [0, 1])
def test_bulk_churn_differential(seed):
    """A dense non-hypothesis workload: hundreds of interleaved inserts
    and deletes with invariant checks, beyond the stateful budget."""
    rng = np.random.default_rng(seed)
    rstar = RStarTree(DIMENSION, capacity=4)
    xtree = XTree(DIMENSION, capacity=4, max_overlap=0.0, max_supernode_factor=8)
    mtree = MTree(euclidean, capacity=4)
    scan = SequentialScan(DIMENSION)
    trees = [rstar, xtree, mtree, scan]
    model = {}
    for oid in range(220):
        point = rng.integers(-20, 21, size=DIMENSION).astype(float)
        for tree in trees:
            tree.insert(point, oid)
        model[oid] = point
        if oid % 3 == 2:  # interleave deletes
            victim = int(rng.choice(sorted(model)))
            for tree in trees:
                assert tree.delete(model[victim], victim)
            del model[victim]
        if oid % 17 == 0:
            for tree in (rstar, xtree, mtree):
                tree.check_invariants()
    for tree in (rstar, xtree, mtree):
        tree.check_invariants()
    assert xtree.supernodes_created > 0, "workload never made a supernode"

    center = np.zeros(DIMENSION)
    pairs = sorted((euclidean(p, center), oid) for oid, p in model.items())
    expected = [(oid, dist) for dist, oid in pairs[:10]]
    for tree in trees:
        assert tree.knn(center, 10) == expected, type(tree).__name__

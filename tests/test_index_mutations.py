"""Regression tests for index mutation paths and on-disk snapshots.

The delete paths — R*-tree underflow/orphan-reinsertion, X-tree
supernode shrinking, M-tree node dissolution — were flushed out by the
stateful differential tests; each scenario that failed during
development is pinned here as a deterministic regression, together with
the snapshot save/load/corruption behavior all four access methods
share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.index import (
    MTree,
    RStarTree,
    SequentialScan,
    XTree,
    load_index,
    save_index,
    structure_digest,
)


def euclidean(a, b):
    return float(np.linalg.norm(np.asarray(a, float) - np.asarray(b, float)))


def grid_points(n, dimension=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-25, 26, size=(n, dimension)).astype(float)


class TestRStarDelete:
    def test_delete_missing_returns_false(self):
        tree = RStarTree(2, capacity=4)
        tree.insert(np.array([1.0, 2.0]), 7)
        assert tree.delete(np.array([1.0, 2.0]), 8) is False
        assert tree.delete(np.array([9.0, 9.0]), 7) is False  # wrong point
        assert tree.size == 1
        tree.check_invariants()

    def test_underflow_triggers_orphan_reinsertion(self):
        """Deleting below min-fill dissolves the leaf; its survivors must
        be reinserted, not lost."""
        tree = RStarTree(2, capacity=4)
        pts = grid_points(40, dimension=2, seed=1)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        # Delete 3 of every 4 — repeatedly drives leaves under min-fill.
        survivors = {}
        for oid, p in enumerate(pts):
            if oid % 4:
                assert tree.delete(p, oid) is True
                tree.check_invariants()
            else:
                survivors[oid] = p
        assert tree.size == len(survivors)
        got = sorted(tree.range_search(np.zeros(2), 100.0))
        assert got == sorted(survivors)

    def test_delete_to_empty_and_refill(self):
        tree = RStarTree(3, capacity=4)
        pts = grid_points(30, seed=2)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        for oid, p in enumerate(pts):
            assert tree.delete(p, oid) is True
        assert tree.size == 0
        tree.check_invariants()
        assert tree.knn(np.zeros(3), 3) == []
        for oid, p in enumerate(pts):  # the tree must still be usable
            tree.insert(p, oid)
        tree.check_invariants()
        assert tree.size == len(pts)

    def test_root_collapses_when_children_dissolve(self):
        """Removing most entries must shrink the tree's height back down
        (a dissolved last child becomes the new root)."""
        tree = RStarTree(2, capacity=4)
        pts = grid_points(60, dimension=2, seed=3)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        tall = tree.height()
        for oid, p in list(enumerate(pts))[:-2]:
            assert tree.delete(p, oid)
        tree.check_invariants()
        assert tree.size == 2
        assert tree.height() < tall


class TestXTreeSupernodeShrink:
    def make_super(self):
        """max_overlap=0 forbids every overlapping split, so clustered
        integer points force genuine supernodes."""
        tree = XTree(3, capacity=4, max_overlap=0.0, max_supernode_factor=8)
        pts = grid_points(150, seed=4)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        assert tree.supernodes_created > 0
        return tree, pts

    def test_supernodes_shrink_on_delete(self):
        tree, pts = self.make_super()
        for oid, p in enumerate(pts):
            assert tree.delete(p, oid) is True
            tree.check_invariants()  # includes the supernode tightness rule
        assert tree.size == 0

    def test_supernode_capacity_is_page_backed(self):
        tree, _ = self.make_super()
        base = tree.capacity

        def walk(node):
            yield node
            if not node.is_leaf:
                for child in node.children:
                    yield from walk(child)

        supers = [n for n in walk(tree.root) if n.capacity > base]
        assert supers, "expected at least one live supernode"
        for node in supers:
            assert node.capacity % base == 0
            assert node.capacity <= base * tree.max_supernode_factor


class TestMTreeDelete:
    def test_delete_dissolves_empty_nodes(self):
        tree = MTree(euclidean, capacity=4)
        pts = grid_points(80, seed=5)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        rng = np.random.default_rng(6)
        order = rng.permutation(len(pts))
        for i, oid in enumerate(order):
            assert tree.delete(pts[oid], int(oid)) is True
            if i % 5 == 0:
                tree.check_invariants()
        assert tree.size == 0
        tree.check_invariants()
        assert tree.knn(np.zeros(3), 2) == []

    def test_delete_missing_is_a_noop(self):
        tree = MTree(euclidean, capacity=4)
        pts = grid_points(20, seed=7)
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
        digest = structure_digest(tree)
        assert tree.delete(pts[3], 999) is False
        assert structure_digest(tree) == digest
        tree.check_invariants()

    def test_queries_exact_after_churn(self):
        tree = MTree(euclidean, capacity=4)
        pts = grid_points(100, seed=8)
        model = {}
        for oid, p in enumerate(pts):
            tree.insert(p, oid)
            model[oid] = p
            if oid % 2:
                victim = min(model)
                assert tree.delete(model.pop(victim), victim)
        tree.check_invariants()
        center = np.zeros(3)
        expected = sorted((euclidean(p, center), oid) for oid, p in model.items())
        assert tree.knn(center, 7) == [(oid, d) for d, oid in expected[:7]]


def build_trees():
    pts = grid_points(90, seed=9)
    rstar = RStarTree(3, capacity=4)
    xtree = XTree(3, capacity=4, max_overlap=0.0, max_supernode_factor=8)
    mtree = MTree(euclidean, capacity=4)
    scan = SequentialScan(3)
    for oid, p in enumerate(pts):
        for tree in (rstar, xtree, mtree, scan):
            tree.insert(p, oid)
    # churn so the snapshots cover post-delete structures too
    for oid in range(0, 90, 4):
        for tree in (rstar, xtree, mtree, scan):
            assert tree.delete(pts[oid], oid)
    return {"rstar": rstar, "xtree": xtree, "mtree": mtree, "scan": scan}


class TestSnapshots:
    @pytest.mark.parametrize("kind", ["rstar", "xtree", "mtree", "scan"])
    def test_roundtrip_is_structure_identical(self, kind, tmp_path):
        tree = build_trees()[kind]
        path = tmp_path / f"{kind}.idx"
        save_index(tree, path)
        loaded = load_index(
            path, metric=euclidean if kind == "mtree" else None
        )
        assert structure_digest(loaded) == structure_digest(tree)
        assert loaded.size == tree.size
        center = np.full(3, 2.0)
        if kind == "mtree":
            assert loaded.knn(center, 9) == tree.knn(center, 9)
        else:
            assert loaded.knn(center, 9) == tree.knn(center, 9)
            assert list(loaded.incremental_nearest(center)) == list(
                tree.incremental_nearest(center)
            )
        if hasattr(loaded, "check_invariants"):
            loaded.check_invariants()

    @pytest.mark.parametrize("kind", ["rstar", "xtree", "mtree"])
    def test_loaded_tree_stays_mutable(self, kind, tmp_path):
        tree = build_trees()[kind]
        path = tmp_path / f"{kind}.idx"
        save_index(tree, path)
        loaded = load_index(
            path, metric=euclidean if kind == "mtree" else None
        )
        extra = np.array([1.0, -2.0, 3.0])
        loaded.insert(extra, 5000)
        loaded.check_invariants()
        assert loaded.delete(extra, 5000) is True
        loaded.check_invariants()
        assert structure_digest(loaded) != "", "digest must still compute"

    def test_mtree_requires_metric(self, tmp_path):
        tree = build_trees()["mtree"]
        path = tmp_path / "m.idx"
        save_index(tree, path)
        with pytest.raises(StorageError):
            load_index(path)

    def test_corruption_is_detected(self, tmp_path):
        tree = build_trees()["rstar"]
        path = tmp_path / "r.idx"
        save_index(tree, path)
        blob = bytearray(path.read_bytes())
        # Flip a byte in the back half: the payload arrays live there,
        # so either the zip container or a CRC check must trip.
        blob[len(blob) // 2 + 37] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError):
            load_index(path)

    def test_truncation_is_detected(self, tmp_path):
        tree = build_trees()["xtree"]
        path = tmp_path / "x.idx"
        save_index(tree, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(StorageError):
            load_index(path)

    def test_missing_file_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            load_index(tmp_path / "absent.idx")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "not-an-index.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(StorageError):
            load_index(path)

"""The incremental/blocked extraction engine vs the reference oracle.

PR 3 replaced the dense O(r^4) max-sum-box tensor with a blocked exact
kernel and added an incremental greedy extractor with a cross-iteration
x-pair memo.  Both are required to be *bit-identical* to the reference
path — same covers, same signs, same error sequence, same coordinates —
so every test here compares against ``engine="reference"`` rather than
against golden values.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import FeatureError
from repro.features.cover_sequence import (
    DEFAULT_BLOCK_BYTES,
    default_block_bytes,
    extract_cover_sequence,
    max_sum_box,
)
from repro.features.vector_set_model import VectorSetModel
from repro.voxel.grid import VoxelGrid


def assert_same_sequence(got, expected):
    assert got.covers == expected.covers
    assert got.errors == expected.errors


class TestBlockedMaxSumBox:
    @pytest.mark.parametrize("block_bytes", [2_000, 50_000, DEFAULT_BLOCK_BYTES])
    def test_matches_reference_on_random_grids(self, rng, block_bytes):
        for _ in range(25):
            shape = tuple(rng.integers(2, 9, size=3))
            weights = rng.integers(-3, 4, size=shape).astype(np.int8)
            gain_ref, lo_ref, hi_ref = max_sum_box(weights, engine="reference")
            gain, lo, hi = max_sum_box(weights, block_bytes=block_bytes)
            assert gain == gain_ref
            assert np.array_equal(lo, lo_ref)
            assert np.array_equal(hi, hi_ref)

    def test_matches_reference_on_float_weights(self, rng):
        weights = rng.normal(size=(6, 7, 5))
        gain_ref, lo_ref, hi_ref = max_sum_box(weights, engine="reference")
        gain, lo, hi = max_sum_box(weights, block_bytes=4_000)
        assert gain == pytest.approx(gain_ref)
        assert np.array_equal(lo, lo_ref)
        assert np.array_equal(hi, hi_ref)

    def test_large_magnitude_weights_use_wide_dtypes(self, rng):
        # Sums near the int16 and int32 SAT limits: the scan must widen
        # instead of wrapping.
        weights = np.full((8, 8, 8), 60, dtype=np.int64)
        gain, lo, hi = max_sum_box(weights, block_bytes=3_000)
        assert gain == 60 * 8**3
        assert np.array_equal(lo, [0, 0, 0])
        assert np.array_equal(hi, [7, 7, 7])

        big = np.full((16, 16, 16), 2**18, dtype=np.int64)
        big[0, 0, 0] = -1
        gain, _, _ = max_sum_box(big, block_bytes=100_000)
        assert gain == 2**18 * (16**3 - 1) - 1

    def test_rejects_unknown_engine(self):
        with pytest.raises(FeatureError):
            max_sum_box(np.ones((2, 2, 2)), engine="turbo")


class TestResolution64Regression:
    def test_single_box_grid_under_fixed_block_budget(self):
        """A resolution-64 grid extracts exactly under an 8 MiB budget.

        The pre-PR-3 dense kernel needed the full O(r^4) difference
        tensor (~2 GiB at r = 64); the blocked kernel's peak memory is
        capped by the budget independent of resolution.
        """
        occupancy = np.zeros((64, 64, 64), dtype=bool)
        occupancy[2:62, 2:62, 2:62] = True
        sequence = extract_cover_sequence(
            VoxelGrid(occupancy), k=3, block_bytes=8 * 1024 * 1024
        )
        assert len(sequence.covers) == 1
        cover = sequence.covers[0]
        assert cover.sign == 1
        assert cover.lower == (2, 2, 2)
        assert cover.upper == (61, 61, 61)
        assert sequence.errors[-1] == 0


class TestIncrementalEngine:
    @given(
        occupancy=arrays(bool, (7, 7, 7), elements=st.booleans()),
        k=st.integers(1, 6),
        allow_subtraction=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_identical_to_reference(self, occupancy, k, allow_subtraction):
        assume(occupancy.any())
        grid = VoxelGrid(occupancy)
        reference = extract_cover_sequence(
            grid, k, allow_subtraction, engine="reference"
        )
        incremental = extract_cover_sequence(
            grid, k, allow_subtraction, engine="incremental"
        )
        assert_same_sequence(incremental, reference)

    @pytest.mark.parametrize("block_bytes", [3_000, None])
    def test_identical_on_shaped_grids(self, lshape_grid, tire_grid, block_bytes):
        for grid in (lshape_grid, tire_grid):
            reference = extract_cover_sequence(grid, 7, engine="reference")
            incremental = extract_cover_sequence(
                grid, 7, engine="incremental", block_bytes=block_bytes
            )
            assert_same_sequence(incremental, reference)

    def test_rejects_unknown_engine(self, lshape_grid):
        with pytest.raises(FeatureError):
            extract_cover_sequence(lshape_grid, 3, engine="bogus")

    def test_model_engine_parameter(self, lshape_grid):
        fast = VectorSetModel(k=5).extract(lshape_grid)
        slow = VectorSetModel(k=5, engine="reference").extract(lshape_grid)
        assert np.array_equal(fast, slow)


class TestExtractMany:
    def test_parallel_matches_serial(self, rng, lshape_grid, tire_grid, sphere_grid):
        grids = [lshape_grid, tire_grid, sphere_grid] * 2
        model = VectorSetModel(k=5)
        serial = model.extract_many(grids)
        parallel = model.extract_many(grids, n_jobs=4)
        assert len(parallel) == len(serial)
        for got, expected in zip(parallel, serial):
            assert np.array_equal(got, expected)

    def test_first_failure_raised_in_input_order(self, lshape_grid):
        class ExplodingModel(VectorSetModel):
            def extract(self, grid):
                if grid.count == 0:
                    raise FeatureError("empty grid")
                return super().extract(grid)

        empty = VoxelGrid(np.zeros((5, 5, 5), dtype=bool))
        with pytest.raises(FeatureError, match="empty grid"):
            ExplodingModel(k=3).extract_many([lshape_grid, empty, lshape_grid])


class TestBlockBudgetEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAXBOX_BLOCK_BYTES", "12345")
        assert default_block_bytes() == 12345

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAXBOX_BLOCK_BYTES", raising=False)
        assert default_block_bytes() == DEFAULT_BLOCK_BYTES

    @pytest.mark.parametrize("raw", ["zero?", "0", "-4"])
    def test_invalid_values_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_MAXBOX_BLOCK_BYTES", raw)
        with pytest.raises(FeatureError):
            default_block_bytes()

"""Smoke tests of the experiment drivers (reduced scale, no cache)."""

import numpy as np
import pytest

from repro.evaluation.experiments import (
    DatasetBundle,
    distance_matrix_for,
    extract_features,
    model_resolution,
    paper_model,
    prepare_dataset,
)
from repro.evaluation.report import format_table
from repro.evaluation.table2 import Table2Row, run_table2
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def tiny_cache(tmp_path_factory):
    """Isolated cache directory so tests never touch the repo cache."""
    import os

    path = tmp_path_factory.mktemp("cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="module")
def tiny_aircraft(tiny_cache):
    return prepare_dataset("aircraft", resolution=15, n=40, seed=11)


class TestPreparation:
    def test_bundle_shape(self, tiny_aircraft):
        assert tiny_aircraft.n == 40
        assert len(tiny_aircraft.labels) == 40
        assert all(not g.is_empty() for g in tiny_aircraft.grids())

    def test_cache_roundtrip(self, tiny_cache):
        first = prepare_dataset("aircraft", resolution=15, n=25, seed=13)
        second = prepare_dataset("aircraft", resolution=15, n=25, seed=13)
        assert np.array_equal(first.labels, second.labels)
        assert all(
            np.array_equal(a.grid.occupancy, b.grid.occupancy)
            for a, b in zip(first.objects, second.objects)
        )

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ReproError):
            prepare_dataset("submarine")

    def test_paper_model_configs(self):
        assert paper_model("volume").partitions == 5
        assert paper_model("vector-set", k=5).k == 5
        assert model_resolution("volume") == 30
        assert model_resolution("vector-set") == 15
        with pytest.raises(ReproError):
            paper_model("hologram")


class TestFeatureExtraction:
    def test_features_cached(self, tiny_aircraft, tiny_cache):
        model = paper_model("vector-set", k=3)
        first = extract_features(tiny_aircraft, model)
        second = extract_features(tiny_aircraft, model)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_distance_matrix_kinds(self, tiny_aircraft):
        model = paper_model("vector-set", k=3)
        features = extract_features(tiny_aircraft, model)
        matching, flags = distance_matrix_for(tiny_aircraft, features, "matching")
        assert matching.shape == (40, 40)
        assert np.allclose(matching, matching.T)
        assert flags is not None and flags.dtype == bool
        permutation, _ = distance_matrix_for(tiny_aircraft, features, "permutation")
        assert np.all(permutation >= 0)
        with pytest.raises(ReproError):
            distance_matrix_for(tiny_aircraft, features, "telepathy")

    def test_euclidean_matrix_on_flat_features(self, tiny_aircraft):
        model = paper_model("cover", k=3)
        features = extract_features(tiny_aircraft, model)
        matrix, flags = distance_matrix_for(tiny_aircraft, features, "euclidean")
        assert flags is None
        manual = np.linalg.norm(features[0] - features[1])
        assert matrix[0, 1] == pytest.approx(manual)


class TestTable2Driver:
    def test_reduced_run_is_consistent(self, tiny_cache):
        rows, consistent = run_table2(
            n_queries=2, variants=4, n=40, use_cache=True
        )
        assert consistent
        assert [r.method for r in rows] == [
            "1-Vect. (X-tree)",
            "Vect. Set w. filter",
            "Vect. Set seq. scan",
        ]
        scan = rows[2]
        assert scan.exact_computations == 2 * 4 * 40
        filter_row = rows[1]
        assert filter_row.exact_computations < scan.exact_computations

    def test_total_is_cpu_plus_io(self):
        row = Table2Row("x", cpu_seconds=1.0, io_seconds=2.0, page_accesses=0, bytes_read=0, exact_computations=0)
        assert row.total_seconds == pytest.approx(3.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.2345], ["b", 100.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "-+-" in lines[2]  # separator under the header
        assert "alpha" in lines[3]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

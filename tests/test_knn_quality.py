"""Tests for the leave-one-out k-nn classification harness."""

import numpy as np
import pytest

from repro.evaluation.knn_quality import leave_one_out_accuracy
from repro.exceptions import ReproError


def distance_matrix(points):
    diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
    return np.sqrt((diff * diff).sum(axis=2))


class TestLeaveOneOut:
    def test_separated_clusters_classify_perfectly(self, rng):
        points = np.vstack(
            [rng.normal(loc=c, scale=0.1, size=(20, 2)) for c in ((0, 0), (10, 10))]
        )
        labels = np.repeat([0, 1], 20)
        families = ["a"] * 20 + ["b"] * 20
        result = leave_one_out_accuracy(distance_matrix(points), labels, families, k=3)
        assert result.accuracy == pytest.approx(1.0)
        assert result.n_queries == 40
        assert result.per_family == {"a": 1.0, "b": 1.0}

    def test_noise_objects_are_not_queries(self, rng):
        points = rng.normal(size=(10, 2))
        labels = np.array([0] * 8 + [-1, -2])
        families = ["a"] * 8 + ["noise", "noise"]
        result = leave_one_out_accuracy(distance_matrix(points), labels, families, k=2)
        assert result.n_queries == 8

    def test_self_is_excluded(self):
        """With k=1 and two identical far-apart pairs, each object's
        nearest neighbor is its twin, not itself."""
        points = np.array([[0.0, 0.0], [0.0, 0.0], [9.0, 9.0], [9.0, 9.0]])
        labels = np.array([0, 0, 1, 1])
        families = ["a", "a", "b", "b"]
        result = leave_one_out_accuracy(distance_matrix(points), labels, families, k=1)
        assert result.accuracy == pytest.approx(1.0)

    def test_mixed_data_scores_below_one(self, rng):
        points = rng.normal(size=(30, 2))  # no structure at all
        labels = np.array([i % 3 for i in range(30)])
        families = [f"f{i % 3}" for i in range(30)]
        result = leave_one_out_accuracy(distance_matrix(points), labels, families, k=5)
        assert result.accuracy < 1.0

    def test_validation(self, rng):
        points = rng.normal(size=(5, 2))
        labels = np.zeros(5, dtype=int)
        families = ["a"] * 5
        with pytest.raises(ReproError):
            leave_one_out_accuracy(distance_matrix(points), labels[:3], families, k=2)
        with pytest.raises(ReproError):
            leave_one_out_accuracy(distance_matrix(points), labels, families, k=0)
        with pytest.raises(ReproError):
            leave_one_out_accuracy(distance_matrix(points), labels, families, k=5)

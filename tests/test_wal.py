"""Unit tests for the write-ahead log and the durable directory layout.

The WAL's contract: every record that ``append`` acknowledged is
readable back (CRC-verified) in order; a torn tail — the half-record a
crash leaves — is detected and truncated on open, never replayed, and
never blocks subsequent appends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import WALError
from repro.wal import (
    DurableLayout,
    WriteAheadLog,
    _parse_fsync,
    replay,
    scan_segment,
    verify_segment,
)


def sample_records(wal: WriteAheadLog, rng) -> list[tuple]:
    plan = []
    for oid in range(5):
        arr = rng.normal(size=(2, 3))
        wal.append("add", oid=oid, array=arr)
        plan.append(("add", oid, arr))
    wal.append("remove", oid=2)
    plan.append(("remove", 2, None))
    arr = rng.normal(size=(3, 3))
    wal.append("update", oid=4, array=arr)
    plan.append(("update", 4, arr))
    wal.append("compact")
    plan.append(("compact", None, None))
    return plan


class TestRoundtrip:
    def test_append_then_replay(self, tmp_path, rng):
        path = tmp_path / "wal-00000000.log"
        with WriteAheadLog(path, fsync="always", fresh=True) as wal:
            plan = sample_records(wal, rng)
        records = list(replay(path))
        assert [r["op"] for r in records] == [op for op, _, _ in plan]
        for record, (_, oid, arr) in zip(records, plan):
            if oid is not None:
                assert record["oid"] == oid
            if arr is not None:
                np.testing.assert_array_equal(record["array"], arr)
            else:
                assert "array" not in record

    def test_checkpoint_record(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fresh=True) as wal:
            wal.append("checkpoint", next_generation=3)
        (record,) = replay(path)
        assert record["op"] == "checkpoint"
        assert record["next_generation"] == 3

    @pytest.mark.parametrize("fsync", ["always", "none", "every-3", 5])
    def test_fsync_policies_roundtrip(self, tmp_path, rng, fsync):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path, fsync=fsync, fresh=True) as wal:
            for oid in range(7):
                wal.append("add", oid=oid, array=rng.normal(size=(1, 2)))
        assert len(list(replay(path))) == 7

    def test_unknown_op_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path / "w.log", fresh=True) as wal:
            with pytest.raises(WALError, match="unknown record op"):
                wal.append("nonsense")


class TestFsyncPolicyParsing:
    def test_policies(self):
        assert _parse_fsync("always") == 1
        assert _parse_fsync(None) == 1
        assert _parse_fsync("none") == 0
        assert _parse_fsync(0) == 0
        assert _parse_fsync("every-8") == 8
        assert _parse_fsync(12) == 12
        assert _parse_fsync("3") == 3

    @pytest.mark.parametrize("bad", ["sometimes", "every-x", -2, 1.5])
    def test_bad_policy_raises(self, bad):
        with pytest.raises(WALError):
            _parse_fsync(bad)


class TestCorruptionDetection:
    def _write(self, path, rng, n=6):
        with WriteAheadLog(path, fresh=True) as wal:
            for oid in range(n):
                wal.append("add", oid=oid, array=rng.normal(size=(2, 2)))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "not-a-wal.log"
        path.write_bytes(b"definitely not a wal segment")
        with pytest.raises(WALError, match="bad magic"):
            scan_segment(path)
        count, error = verify_segment(path)
        assert count == 0 and "bad magic" in error

    def test_torn_tail_detected_and_prefix_kept(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        self._write(path, rng)
        whole = path.read_bytes()
        path.write_bytes(whole[:-7])  # kill the last record mid-payload
        scan = scan_segment(path)
        assert scan.torn
        assert len(scan.records) == 5
        count, error = verify_segment(path)
        assert count == 5 and error is not None

    def test_flipped_crc_stops_scan(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        self._write(path, rng, n=3)
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # corrupt the last record's payload
        path.write_bytes(bytes(data))
        scan = scan_segment(path)
        assert scan.torn and "CRC" in scan.error
        assert len(scan.records) == 2

    def test_open_truncates_torn_tail_and_appends_continue(self, tmp_path, rng):
        path = tmp_path / "wal.log"
        self._write(path, rng)
        whole = path.read_bytes()
        path.write_bytes(whole[:-3])
        reg = obs.registry()
        reg.reset()
        obs.enable()
        try:
            wal = WriteAheadLog(path)  # open-for-append truncates
            assert reg.counter("wal.torn_tail_truncations").value == 1
        finally:
            reg.reset()
            obs.disable()
        wal.append("add", oid=99, array=rng.normal(size=(1, 2)))
        wal.close()
        records = list(replay(path))
        assert [r.get("oid") for r in records] == [0, 1, 2, 3, 4, 99]

    def test_empty_file_is_not_a_segment(self, tmp_path):
        path = tmp_path / "empty.log"
        path.write_bytes(b"")
        with pytest.raises(WALError):
            scan_segment(path)


class TestDurableLayout:
    def test_publish_roundtrip(self, tmp_path):
        layout = DurableLayout(tmp_path / "db")
        layout.write_config({"capacity": 4})
        assert layout.read_config()["capacity"] == 4
        layout.publish(7)
        assert layout.current_generation() == 7
        layout.publish(8)
        assert layout.current_generation() == 8

    def test_missing_markers_raise(self, tmp_path):
        layout = DurableLayout(tmp_path / "nope")
        with pytest.raises(WALError, match="not a durable database"):
            layout.read_config()
        with pytest.raises(WALError, match="no CURRENT"):
            layout.current_generation()

    def test_corrupt_current_raises(self, tmp_path):
        layout = DurableLayout(tmp_path)
        layout.current_path.write_text("banana\n")
        with pytest.raises(WALError, match="corrupt generation marker"):
            layout.current_generation()

    def test_retire_keeps_window(self, tmp_path, rng):
        layout = DurableLayout(tmp_path)
        for generation in range(1, 6):
            layout.snapshot_path(generation).write_bytes(b"x")
            WriteAheadLog(
                layout.wal_path(generation), generation=generation, fresh=True
            ).close()
        layout.retire(published=5, keep_generations=2)
        assert layout.generations_on_disk() == [4, 5]
        assert layout.wal_generations_on_disk() == [4, 5]
        # keep_generations below 1 is clamped: the published generation
        # itself always survives.
        layout.retire(published=5, keep_generations=0)
        assert layout.generations_on_disk() == [5]

"""Tests for voxelization of solids, meshes and point clouds."""

import numpy as np
import pytest

from repro.exceptions import VoxelizationError
from repro.geometry.mesh import box_mesh, uv_sphere_mesh
from repro.geometry.sdf import Box, Cylinder, Sphere
from repro.voxel.voxelize import voxelize_mesh, voxelize_points, voxelize_solid


class TestVoxelizeSolid:
    def test_sphere_volume_converges(self):
        grid = voxelize_solid(Sphere(radius=1.0), resolution=40, supersample=1)
        analytic = 4.0 / 3.0 * np.pi
        assert grid.count * grid.voxel_size**3 == pytest.approx(analytic, rel=0.05)

    def test_margin_keeps_border_empty(self):
        grid = voxelize_solid(Sphere(radius=1.0), resolution=10, margin=1)
        occ = grid.occupancy
        assert not occ[0].any() and not occ[-1].any()
        assert not occ[:, 0].any() and not occ[:, -1].any()
        assert not occ[:, :, 0].any() and not occ[:, :, -1].any()

    def test_keep_aspect_preserves_proportions(self):
        grid = voxelize_solid(Box(size=(2.0, 1.0, 1.0)), resolution=16, keep_aspect=True)
        lower, upper = grid.bounding_box()
        extent = upper - lower + 1
        assert extent[0] == pytest.approx(2 * extent[1], abs=2)

    def test_anisotropic_fills_grid(self):
        grid = voxelize_solid(Box(size=(4.0, 1.0, 0.5)), resolution=16, keep_aspect=False)
        lower, upper = grid.bounding_box()
        extent = upper - lower + 1
        # Every axis should span the usable raster.
        assert np.all(extent >= 12)

    def test_supersampling_catches_thin_plate(self):
        # A plate thinner than one voxel (0.25) but thicker than the
        # sub-sample spacing (0.0625) must be voxelized; center sampling
        # can miss it entirely.
        plate = Box(center=(0.0, 0.0, 0.11), size=(2.0, 2.0, 0.08))
        grid = voxelize_solid(plate, resolution=10, supersample=4)
        assert grid.count > 0

    def test_supersample_one_is_center_sampling(self):
        grid_a = voxelize_solid(Sphere(radius=1.0), resolution=12, supersample=1)
        # Center sampling marks exactly the voxels whose center is inside.
        centers_inside = Sphere(radius=1.0).contains(grid_a.centers())
        assert centers_inside.all()

    def test_invalid_parameters(self):
        with pytest.raises(VoxelizationError):
            voxelize_solid(Sphere(radius=1.0), resolution=0)
        with pytest.raises(VoxelizationError):
            voxelize_solid(Sphere(radius=1.0), resolution=8, margin=4)
        with pytest.raises(VoxelizationError):
            voxelize_solid(Sphere(radius=1.0), resolution=8, supersample=0)


class TestVoxelizeMesh:
    def test_closed_box_is_filled(self):
        grid = voxelize_mesh(box_mesh(size=(1.0, 1.0, 1.0)), resolution=12, fill=True)
        hollow = voxelize_mesh(box_mesh(size=(1.0, 1.0, 1.0)), resolution=12, fill=False)
        assert grid.count > hollow.count  # interior got filled

    def test_mesh_and_solid_voxelizations_agree(self):
        """Mesh rasterization marks every surface-touched voxel, which is
        conservative — so compare against the conservative (supersampled)
        solid voxelization."""
        mesh_grid = voxelize_mesh(
            uv_sphere_mesh(radius=1.0, rings=24, segments=48), resolution=14
        )
        solid_grid = voxelize_solid(Sphere(radius=1.0), resolution=14, supersample=4)
        overlap = (mesh_grid.occupancy & solid_grid.occupancy).sum()
        union = (mesh_grid.occupancy | solid_grid.occupancy).sum()
        assert overlap / union > 0.85

    def test_surface_is_connected_enough_to_seal(self):
        # If rasterization left holes, the fill would flood the interior
        # and fill=True would equal fill=False.
        sealed = voxelize_mesh(uv_sphere_mesh(radius=1.0), resolution=12, fill=True)
        shell = voxelize_mesh(uv_sphere_mesh(radius=1.0), resolution=12, fill=False)
        assert sealed.count > shell.count * 1.2

    def test_invalid_mesh_rejected(self):
        import repro.geometry.mesh as mesh_mod

        degenerate = mesh_mod.TriangleMesh(
            np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        with pytest.raises(Exception):
            voxelize_mesh(degenerate, resolution=8)


class TestVoxelizePoints:
    def test_points_fall_into_distinct_voxels(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.0, 1.0, 0.0]])
        grid = voxelize_points(pts, resolution=8)
        assert grid.count == 3

    def test_empty_cloud_rejected(self):
        with pytest.raises(VoxelizationError):
            voxelize_points(np.empty((0, 3)), resolution=8)

    def test_wrong_shape_rejected(self):
        with pytest.raises(VoxelizationError):
            voxelize_points(np.zeros((4, 2)), resolution=8)

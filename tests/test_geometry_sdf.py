"""Tests for the analytic solids (membership predicates and bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GeometryError
from repro.geometry.sdf import (
    Box,
    Capsule,
    Cone,
    Cylinder,
    Difference,
    Ellipsoid,
    Intersection,
    Sphere,
    Torus,
    Transformed,
    Union,
    union_all,
)
from repro.geometry.transform import Transform

ALL_SOLIDS = [
    Box(size=(1.0, 2.0, 0.5)),
    Sphere(radius=0.8),
    Ellipsoid(radii=(0.5, 1.0, 0.25)),
    Cylinder(radius=0.5, height=1.5),
    Cylinder(radius=0.5, height=1.5, inner_radius=0.2),
    Capsule(radius=0.3, height=1.0),
    Cone(radius=0.6, height=1.2),
    Torus(major_radius=1.0, minor_radius=0.3),
]


class TestMembershipBasics:
    @pytest.mark.parametrize("solid", ALL_SOLIDS, ids=lambda s: type(s).__name__)
    def test_center_of_bounds_consistency(self, solid, rng):
        """Random points far outside the bounds must never be inside."""
        lower, upper = solid.bounds()
        outside = rng.uniform(10.0, 20.0, size=(50, 3))
        assert not solid.contains(outside).any()

    @pytest.mark.parametrize("solid", ALL_SOLIDS, ids=lambda s: type(s).__name__)
    def test_bounds_contain_all_members(self, solid, rng):
        """Every point classified inside must lie within the bounds."""
        lower, upper = solid.bounds()
        pts = rng.uniform(lower - 0.5, upper + 0.5, size=(2000, 3))
        inside = pts[solid.contains(pts)]
        assert np.all(inside >= lower - 1e-9) and np.all(inside <= upper + 1e-9)

    def test_box_corner_inclusive(self):
        box = Box(size=(2.0, 2.0, 2.0))
        assert box.contains(np.array([[1.0, 1.0, 1.0]]))[0]

    def test_sphere_boundary_inclusive(self):
        assert Sphere(radius=1.0).contains(np.array([[1.0, 0.0, 0.0]]))[0]

    def test_tube_excludes_inner_hole(self):
        tube = Cylinder(radius=1.0, height=2.0, inner_radius=0.5)
        assert not tube.contains(np.array([[0.0, 0.0, 0.0]]))[0]
        assert tube.contains(np.array([[0.75, 0.0, 0.0]]))[0]

    def test_cone_narrows_toward_apex(self):
        cone = Cone(radius=1.0, height=2.0)
        base_ring = np.array([[0.9, 0.0, -0.9]])
        near_apex = np.array([[0.9, 0.0, 0.9]])
        assert cone.contains(base_ring)[0]
        assert not cone.contains(near_apex)[0]

    def test_capsule_caps_extend_past_cylinder(self):
        capsule = Capsule(radius=0.5, height=1.0)
        assert capsule.contains(np.array([[0.0, 0.0, 0.9]]))[0]  # inside cap
        assert not capsule.contains(np.array([[0.0, 0.0, 1.01]]))[0]

    def test_torus_hole(self):
        torus = Torus(major_radius=1.0, minor_radius=0.3)
        assert not torus.contains(np.array([[0.0, 0.0, 0.0]]))[0]
        assert torus.contains(np.array([[1.0, 0.0, 0.0]]))[0]

    def test_single_point_shape(self):
        assert Sphere(radius=1.0).contains(np.array([0.0, 0.0, 0.0])).shape == (1,)


class TestValidation:
    def test_negative_sizes_rejected(self):
        with pytest.raises(GeometryError):
            Box(size=(1.0, -1.0, 1.0))
        with pytest.raises(GeometryError):
            Sphere(radius=0.0)
        with pytest.raises(GeometryError):
            Cylinder(radius=1.0, height=-2.0)

    def test_inner_radius_bounds(self):
        with pytest.raises(GeometryError):
            Cylinder(radius=0.5, inner_radius=0.5)

    def test_bad_axis_rejected(self):
        with pytest.raises(GeometryError):
            Cylinder(axis="q")

    def test_union_all_empty_rejected(self):
        with pytest.raises(GeometryError):
            union_all([])


class TestComposition:
    def test_union_is_or(self, rng):
        a, b = Sphere(center=(-0.5, 0, 0), radius=0.5), Sphere(center=(0.5, 0, 0), radius=0.5)
        pts = rng.uniform(-1.2, 1.2, size=(500, 3))
        assert np.array_equal((a | b).contains(pts), a.contains(pts) | b.contains(pts))

    def test_intersection_is_and(self, rng):
        a, b = Sphere(radius=0.8), Box(size=(1.0, 1.0, 1.0))
        pts = rng.uniform(-1.0, 1.0, size=(500, 3))
        assert np.array_equal((a & b).contains(pts), a.contains(pts) & b.contains(pts))

    def test_difference_is_andnot(self, rng):
        a, b = Box(size=(2.0, 2.0, 2.0)), Sphere(radius=0.7)
        pts = rng.uniform(-1.2, 1.2, size=(500, 3))
        assert np.array_equal((a - b).contains(pts), a.contains(pts) & ~b.contains(pts))

    def test_operators_return_composite_types(self):
        a, b = Sphere(radius=1.0), Box()
        assert isinstance(a | b, Union)
        assert isinstance(a & b, Intersection)
        assert isinstance(a - b, Difference)

    def test_intersection_bounds_shrink(self):
        a = Box(center=(0, 0, 0), size=(2, 2, 2))
        b = Box(center=(1, 0, 0), size=(2, 2, 2))
        lo, hi = (a & b).bounds()
        assert lo[0] == pytest.approx(0.0)
        assert hi[0] == pytest.approx(1.0)


class TestTransformed:
    def test_translation_moves_membership(self):
        moved = Sphere(radius=0.5).translated([2.0, 0.0, 0.0])
        assert moved.contains(np.array([[2.0, 0.0, 0.0]]))[0]
        assert not moved.contains(np.array([[0.0, 0.0, 0.0]]))[0]

    def test_rotation_moves_membership(self):
        rod = Cylinder(radius=0.1, height=2.0, axis="z").rotated("y", np.pi / 2)
        assert rod.contains(np.array([[0.9, 0.0, 0.0]]))[0]
        assert not rod.contains(np.array([[0.0, 0.0, 0.9]]))[0]

    def test_bounds_cover_transformed_solid(self, rng):
        solid = Box(size=(2.0, 0.5, 0.3)).rotated(np.array([1.0, 1.0, 0.3]), 0.9)
        lower, upper = solid.bounds()
        pts = rng.uniform(lower - 1, upper + 1, size=(3000, 3))
        inside = pts[solid.contains(pts)]
        assert np.all(inside >= lower - 1e-9) and np.all(inside <= upper + 1e-9)

    def test_nested_transform_composes(self):
        solid = Sphere(radius=0.5).translated([1.0, 0.0, 0.0]).translated([0.0, 1.0, 0.0])
        assert solid.contains(np.array([[1.0, 1.0, 0.0]]))[0]


@given(
    center=st.tuples(*[st.floats(-2, 2) for _ in range(3)]),
    radius=st.floats(0.1, 2.0),
)
@settings(max_examples=50, deadline=None)
def test_sphere_membership_property(center, radius):
    """Points strictly closer than the radius are in, farther are out."""
    sphere = Sphere(center=center, radius=radius)
    rng = np.random.default_rng(0)
    directions = rng.normal(size=(20, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    inner = np.asarray(center) + directions * radius * 0.99
    outer = np.asarray(center) + directions * radius * 1.01
    assert sphere.contains(inner).all()
    assert not sphere.contains(outer).any()

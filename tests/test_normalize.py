"""Tests for pose normalization, PCA and symmetry handling."""

import numpy as np
import pytest

from repro.exceptions import VoxelizationError
from repro.geometry.sdf import Box, Cylinder
from repro.geometry.transform import symmetry_matrices
from repro.normalize.pca import pca_align_grid, pca_align_points, principal_axes
from repro.normalize.pose import PoseInfo, center_grid, normalize_grid
from repro.normalize.symmetry import (
    canonical_symmetry_matrix,
    canonicalize_grid,
    extract_all_variants,
    invariant_distance,
    invariant_distance_precomputed,
    symmetry_variants,
)
from repro.voxel.grid import VoxelGrid
from repro.voxel.voxelize import voxelize_solid


class TestPose:
    def test_centering_is_idempotent(self, lshape_grid):
        once = center_grid(lshape_grid)
        twice = center_grid(once)
        assert np.array_equal(once.occupancy, twice.occupancy)

    def test_centering_preserves_count(self, lshape_grid):
        assert center_grid(lshape_grid).count == lshape_grid.count

    def test_centered_bbox_is_central(self):
        grid = VoxelGrid.empty(10)
        grid.occupancy[0:2, 0:2, 0:2] = True  # corner blob
        centered = center_grid(grid)
        lower, upper = centered.bounding_box()
        # Slack below and above differs by at most one voxel.
        slack_low = lower
        slack_high = 9 - upper
        assert np.all(np.abs(slack_low - slack_high) <= 1)

    def test_normalize_records_world_extents(self):
        grid = voxelize_solid(Box(size=(2.0, 1.0, 0.5)), resolution=16)
        _, pose = normalize_grid(grid)
        sx, sy, sz = pose.scale_factors
        assert sx == pytest.approx(2.0, rel=0.2)
        assert sy == pytest.approx(1.0, rel=0.25)
        assert sz == pytest.approx(0.5, rel=0.35)

    def test_size_ratio_symmetric(self):
        a = PoseInfo((1.0, 1.0, 1.0), (0, 0, 0))
        b = PoseInfo((2.0, 2.0, 2.0), (0, 0, 0))
        assert a.size_ratio(b) == b.size_ratio(a) == pytest.approx(1 / 8)

    def test_empty_grid_rejected(self):
        with pytest.raises(VoxelizationError):
            normalize_grid(VoxelGrid.empty(5))


class TestPCA:
    def test_principal_axes_orthonormal(self, rng):
        pts = rng.normal(size=(200, 3)) * np.array([3.0, 1.0, 0.2])
        axes = principal_axes(pts)
        assert np.allclose(axes @ axes.T, np.eye(3), atol=1e-9)
        assert np.isclose(np.linalg.det(axes), 1.0)

    def test_alignment_orders_variance(self, rng):
        pts = rng.normal(size=(500, 3)) * np.array([0.1, 5.0, 1.0])
        aligned = pca_align_points(pts)
        variances = aligned.var(axis=0)
        assert variances[0] >= variances[1] >= variances[2]

    def test_rotation_invariance_of_alignment(self, rng):
        from repro.geometry.transform import rotation_matrix

        pts = rng.normal(size=(400, 3)) * np.array([4.0, 1.5, 0.5])
        rotated = pts @ rotation_matrix(np.array([1.0, 2.0, 0.5]), 1.1).T
        a = pca_align_points(pts)
        b = pca_align_points(rotated)
        # Same point cloud up to sign conventions handled by skewness.
        assert np.allclose(np.sort(a.var(axis=0)), np.sort(b.var(axis=0)), rtol=1e-6)

    def test_align_grid_puts_long_axis_first(self):
        rod = voxelize_solid(Cylinder(radius=0.2, height=3.0, axis="y"), resolution=15)
        aligned = pca_align_grid(rod)
        lower, upper = aligned.bounding_box()
        extent = upper - lower + 1
        assert extent[0] == max(extent)

    def test_too_few_points_rejected(self):
        with pytest.raises(VoxelizationError):
            principal_axes(np.zeros((1, 3)))


class TestSymmetry:
    def test_variants_counts(self, lshape_grid):
        assert len(symmetry_variants(lshape_grid, False)) == 24
        assert len(symmetry_variants(lshape_grid, True)) == 48

    def test_invariant_distance_is_zero_for_rotated_copy(self, lshape_grid):
        mats = symmetry_matrices(True)
        rotated = lshape_grid.transformed(mats[17])

        def extract(grid):
            return grid.occupancy.astype(float).ravel()

        def distance(a, b):
            return float(np.linalg.norm(a - b))

        assert invariant_distance(lshape_grid, extract(rotated), extract, distance) == 0.0

    def test_invariant_distance_precomputed_matches(self, lshape_grid):
        mats = symmetry_matrices(True)
        rotated = lshape_grid.transformed(mats[5])

        def extract(grid):
            return grid.occupancy.astype(float).ravel()

        def distance(a, b):
            return float(np.linalg.norm(a - b))

        variants = extract_all_variants(lshape_grid, extract)
        assert invariant_distance_precomputed(variants, extract(rotated), distance) == 0.0

    def test_canonicalization_collapses_all_48_variants(self):
        """For a moment-non-degenerate (chiral, skewed) object the
        canonical pose of every symmetric variant is identical — the
        exact quotient property the pipeline relies on."""
        from repro.geometry.sdf import Box

        chiral = (
            Box(size=(2.0, 0.6, 0.5))
            | Box(center=(0.7, 0.5, 0.0), size=(0.6, 0.8, 0.4))
            | Box(center=(-0.6, -0.1, 0.6), size=(0.5, 0.4, 0.9))
        )
        grid = voxelize_solid(chiral, resolution=12)
        canonical = {
            canonicalize_grid(variant).occupancy.tobytes()
            for variant in symmetry_variants(grid, include_reflections=True)
        }
        assert len(canonical) == 1

    def test_canonicalization_near_symmetric_object(self, lshape_grid):
        """An object that is (near-)mirror-symmetric in one axis has a
        numerically ambiguous sign there; the canonical poses of its
        variants may split into at most the two mirror twins — which are
        themselves near-identical grids, so downstream distances stay
        small."""
        canonical = {
            canonicalize_grid(variant).occupancy.tobytes()
            for variant in symmetry_variants(lshape_grid, include_reflections=True)
        }
        assert len(canonical) <= 2

    def test_canonical_matrix_is_cube_symmetry(self, lshape_grid):
        mat = canonical_symmetry_matrix(lshape_grid)
        assert np.allclose(np.abs(mat).sum(axis=0), 1)
        assert np.allclose(mat @ mat.T, np.eye(3))

    def test_rotation_only_canonicalization_has_det_one(self, lshape_grid):
        mat = canonical_symmetry_matrix(lshape_grid, include_reflections=False)
        assert np.isclose(np.linalg.det(mat), 1.0)

    def test_empty_grid_rejected(self):
        with pytest.raises(VoxelizationError):
            canonicalize_grid(VoxelGrid.empty(4))

"""Tests for the extension features: partial similarity, scaling toggle,
STR bulk loading and voxel-overlap metrics."""

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.core.partial import best_common_substructure, partial_matching_distance
from repro.exceptions import DistanceError, FeatureError, IndexError_, VoxelizationError
from repro.features.scaling import denormalize_cover_vectors, scale_aware_sets
from repro.index.bulkload import bulk_load
from repro.index.pages import PageManager
from repro.index.rstar import RStarTree
from repro.index.xtree import XTree
from repro.normalize.pose import PoseInfo
from repro.voxel.grid import VoxelGrid
from repro.voxel.metrics import (
    dice_coefficient,
    intersection_over_union,
    symmetric_volume_difference,
    volume_difference_distance,
)


class TestPartialMatching:
    def test_i_equals_min_size_is_full_matching_without_weights(self, rng):
        x, y = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        partial = partial_matching_distance(x, y, 4)
        full = min_matching_distance(x, y, weight=lambda a: np.zeros(len(a)))
        assert partial == pytest.approx(full)

    def test_monotone_in_i(self, rng):
        x, y = rng.normal(size=(5, 3)), rng.normal(size=(6, 3))
        profile = best_common_substructure(x, y)
        assert all(b >= a - 1e-12 for a, b in zip(profile, profile[1:]))

    def test_shared_substructure_scores_zero(self, rng):
        """Two objects sharing 2 covers but differing elsewhere get
        partial distance 0 at i = 2."""
        shared = rng.normal(size=(2, 6))
        x = np.vstack([shared, rng.normal(size=(3, 6)) + 10])
        y = np.vstack([shared, rng.normal(size=(2, 6)) - 10])
        assert partial_matching_distance(x, y, 2) == pytest.approx(0.0)
        # The full matching distance is large — partial sees through it.
        assert min_matching_distance(x, y) > 10

    def test_brute_force_equivalence(self, rng):
        """The i cheapest pairs of the optimal partial matching equal an
        exhaustive search over all i-subsets/i-permutations."""
        from itertools import combinations, permutations

        for _ in range(10):
            m, n = rng.integers(2, 5, size=2)
            x, y = rng.normal(size=(m, 2)), rng.normal(size=(n, 2))
            i = int(rng.integers(1, min(m, n) + 1))
            best = np.inf
            for x_subset in combinations(range(m), i):
                for y_perm in permutations(range(n), i):
                    cost = sum(
                        np.linalg.norm(x[a] - y[b]) for a, b in zip(x_subset, y_perm)
                    )
                    best = min(best, cost)
            assert partial_matching_distance(x, y, i) == pytest.approx(best)

    def test_symmetry(self, rng):
        x, y = rng.normal(size=(3, 4)), rng.normal(size=(5, 4))
        assert partial_matching_distance(x, y, 2) == pytest.approx(
            partial_matching_distance(y, x, 2)
        )

    def test_validation(self, rng):
        x, y = rng.normal(size=(3, 3)), rng.normal(size=(2, 3))
        with pytest.raises(DistanceError):
            partial_matching_distance(x, y, 0)
        with pytest.raises(DistanceError):
            partial_matching_distance(x, y, 3)  # > min(m, n)
        with pytest.raises(DistanceError):
            partial_matching_distance(x, rng.normal(size=(2, 4)), 1)


class TestScalingToggle:
    def test_denormalization_restores_world_units(self):
        pose = PoseInfo(scale_factors=(3.0, 1.0, 1.0), translation=(0, 0, 0))
        rows = np.array([[0.0, 0.0, 0.0, 0.5, 0.1, 0.1]])
        world = denormalize_cover_vectors(rows, pose)
        assert world[0, 3] == pytest.approx(1.5)  # 0.5 * max extent

    def test_scaled_copies_become_distinguishable(self, rng):
        """With scaling invariance ON two scaled copies have distance 0;
        with it OFF (denormalized features) they differ."""
        rows = np.hstack([rng.normal(size=(3, 3)) * 0.2, rng.uniform(0.1, 0.4, (3, 3))])
        small = PoseInfo((1.0, 0.8, 0.5), (0, 0, 0))
        large = PoseInfo((2.0, 1.6, 1.0), (0, 0, 0))
        invariant = min_matching_distance(rows, rows)
        assert invariant == pytest.approx(0.0)
        denorm_small, denorm_large = scale_aware_sets([rows, rows], [small, large])
        assert min_matching_distance(denorm_small, denorm_large) > 0.1

    def test_same_size_objects_unaffected_relative(self, rng):
        rows_a = np.hstack([rng.normal(size=(2, 3)), rng.uniform(0.1, 0.5, (2, 3))])
        rows_b = np.hstack([rng.normal(size=(2, 3)), rng.uniform(0.1, 0.5, (2, 3))])
        pose = PoseInfo((2.0, 2.0, 2.0), (0, 0, 0))
        base = min_matching_distance(rows_a, rows_b)
        denorm = min_matching_distance(
            denormalize_cover_vectors(rows_a, pose),
            denormalize_cover_vectors(rows_b, pose),
        )
        assert denorm == pytest.approx(2.0 * base)

    def test_validation(self, rng):
        pose = PoseInfo((1.0, 1.0, 1.0), (0, 0, 0))
        with pytest.raises(FeatureError):
            denormalize_cover_vectors(rng.normal(size=(2, 5)), pose)
        with pytest.raises(FeatureError):
            denormalize_cover_vectors(rng.normal(size=(2, 6)), pose, margin_fraction=1.0)
        with pytest.raises(FeatureError):
            scale_aware_sets([rng.normal(size=(2, 6))], [])


class TestBulkLoad:
    @pytest.mark.parametrize("tree_class", [RStarTree, XTree], ids=["rstar", "xtree"])
    def test_queries_match_incremental_tree(self, tree_class, rng):
        points = rng.random(size=(800, 5))
        packed = bulk_load(points, tree_class=tree_class)
        packed.validate()
        incremental = tree_class(5)
        for i, point in enumerate(points):
            incremental.insert(point, i)
        query = rng.random(5)
        assert [o for o, _ in packed.knn(query, 10)] == [
            o for o, _ in incremental.knn(query, 10)
        ]

    def test_packed_tree_is_smaller(self, rng):
        points = rng.random(size=(1000, 4))
        packed = bulk_load(points)
        incremental = RStarTree(4)
        for i, point in enumerate(points):
            incremental.insert(point, i)
        assert packed.node_count() <= incremental.node_count()

    def test_inserts_after_bulk_load_work(self, rng):
        points = rng.random(size=(200, 3))
        tree = bulk_load(points)
        extra = rng.random(size=(50, 3))
        for i, point in enumerate(extra):
            tree.insert(point, 200 + i)
        tree.validate()
        assert tree.size == 250

    def test_custom_oids(self, rng):
        points = rng.random(size=(20, 2))
        tree = bulk_load(points, oids=[100 + i for i in range(20)])
        found = tree.knn(points[3], 1)
        assert found[0][0] == 103

    def test_validation(self, rng):
        with pytest.raises(IndexError_):
            bulk_load(np.empty((0, 3)))
        with pytest.raises(IndexError_):
            bulk_load(rng.random(size=(5, 3)), oids=[1, 2])
        with pytest.raises(IndexError_):
            bulk_load(rng.random(size=(5, 3)), fill=0.01)


class TestVoxelMetrics:
    def test_identical_grids(self, tire_grid):
        assert symmetric_volume_difference(tire_grid, tire_grid) == 0
        assert intersection_over_union(tire_grid, tire_grid) == pytest.approx(1.0)
        assert dice_coefficient(tire_grid, tire_grid) == pytest.approx(1.0)
        assert volume_difference_distance(tire_grid, tire_grid) == pytest.approx(0.0)

    def test_disjoint_grids(self):
        a = VoxelGrid.empty(6)
        a.occupancy[0, 0, 0] = True
        b = VoxelGrid.empty(6)
        b.occupancy[5, 5, 5] = True
        assert symmetric_volume_difference(a, b) == 2
        assert intersection_over_union(a, b) == 0.0
        assert volume_difference_distance(a, b) == pytest.approx(1.0)

    def test_empty_grids(self):
        a, b = VoxelGrid.empty(4), VoxelGrid.empty(4)
        assert intersection_over_union(a, b) == 1.0
        assert dice_coefficient(a, b) == 1.0

    def test_known_half_overlap(self):
        a = VoxelGrid.empty(4)
        a.occupancy[0:2, :, :] = True
        b = VoxelGrid.empty(4)
        b.occupancy[1:3, :, :] = True
        assert intersection_over_union(a, b) == pytest.approx(1 / 3)
        assert dice_coefficient(a, b) == pytest.approx(1 / 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VoxelizationError):
            symmetric_volume_difference(VoxelGrid.empty(4), VoxelGrid.empty(5))

    def test_cover_sequence_error_agrees(self, tire_grid):
        """The cover extractor's reported error IS the symmetric volume
        difference of its approximation."""
        from repro.features.cover_sequence import extract_cover_sequence

        sequence = extract_cover_sequence(tire_grid, 5)
        approx = VoxelGrid(sequence.approximation())
        assert symmetric_volume_difference(tire_grid, approx) == sequence.final_error

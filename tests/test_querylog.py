"""The wide-event query log (``repro.obs.querylog``).

The acceptance bar for the telemetry layer: every ``query`` wide event
agrees *field-for-field* with the ``QueryStats`` the caller got back —
across all four backends and both exact/approx modes — slow-query
capture fires deterministically above the threshold, and sampling is a
reproducible (seedless, accumulator-based) pattern, never a coin flip.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.db import BACKENDS, SimilarityDatabase
from repro.obs import querylog


@pytest.fixture(autouse=True)
def clean_obs():
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    querylog.reset()
    yield
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    querylog.reset()


@pytest.fixture
def enabled(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable()
    obs.configure_sink(trace)
    yield trace
    obs.close_sink()


def query_events(trace):
    obs.close_sink()
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    return [r for r in records if r["event"] == "query"]


def make_db(backend, rng, count=24, dim=6):
    db = SimilarityDatabase(capacity=5, backend=backend)
    sets = [
        rng.normal(size=(int(rng.integers(1, 6)), dim)) for _ in range(count)
    ]
    for oid, vectors in enumerate(sets):
        db.add(oid, vectors)
    return db, sets


class TestExactness:
    """Wide events mirror the returned QueryStats, on every path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ["exact", "approx"])
    def test_knn_event_agrees_with_stats(self, enabled, rng, backend, mode):
        db, sets = make_db(backend, rng)
        kwargs = {"mode": mode, "shortlist": 10} if mode == "approx" else {}
        _, stats = db.knn_query(sets[0], 3, **kwargs)
        events = query_events(enabled)
        assert len(events) == 1
        event = events[0]
        # Field-for-field agreement with what the caller got back.
        for key, value in stats.as_dict().items():
            assert event[key] == value, key
        assert event["selectivity"] == stats.exact_computations / len(db)
        # Context fields stamped by the database layer.
        assert event["backend"] == backend
        assert event["mode"] == mode
        assert event["db_version"] == db.version
        # IO baselines became per-query deltas.
        assert event["io_pages"] >= 0 and event["io_bytes"] >= 0
        expected_kind = {
            ("exact", True): "mtree_knn",
            ("exact", False): "knn",
            ("approx", True): "approx_knn",
            ("approx", False): "approx_knn",
        }[(mode, backend == "mtree")]
        assert event["kind"] == expected_kind

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_range_event_agrees_with_stats(self, enabled, rng, backend):
        db, sets = make_db(backend, rng)
        _, stats = db.range_query(sets[0], 2.0)
        events = query_events(enabled)
        assert len(events) == 1
        event = events[0]
        for key, value in stats.as_dict().items():
            assert event[key] == value, key
        assert event["kind"] == ("mtree_range" if backend == "mtree" else "range")
        assert event["epsilon"] == 2.0
        assert event["backend"] == backend and event["mode"] == "exact"

    def test_phase_timings_decompose_total(self, enabled, rng):
        db, sets = make_db("xtree", rng)
        db.knn_query(sets[0], 3)
        (event,) = query_events(enabled)
        assert event["seconds"] >= event["refine_seconds"] >= 0.0
        assert event["filter_seconds"] >= 0.0
        assert event["filter_seconds"] == pytest.approx(
            event["seconds"] - event["refine_seconds"]
        )
        assert event["blocks"] >= 1

    def test_approx_total_includes_shortlist_phase(self, enabled, rng):
        db, sets = make_db("rstar", rng)
        db.knn_query(sets[0], 3, mode="approx", shortlist=10)
        (event,) = query_events(enabled)
        # In approx mode the filter phase is the measured sketch +
        # Hamming shortlist; the total is filter + refine by definition.
        assert event["seconds"] == pytest.approx(
            event["filter_seconds"] + event["refine_seconds"]
        )
        assert event["budget"] == 10
        assert event["shortlist_size"] <= 10

    def test_disabled_mode_emits_and_counts_nothing(self, rng):
        db, sets = make_db("xtree", rng)
        db.knn_query(sets[0], 3)
        snap = obs.registry().snapshot()
        assert snap["counters"] == {} and snap["events"] == []


class TestSlowCapture:
    def test_slow_capture_fires_deterministically(self, enabled, rng):
        # Rate 0 drops everything — except the slow path, which at a
        # 0 ms threshold always fires (every query takes >= 0 ms).
        querylog.configure(sample_rate=0.0, slow_ms=0.0)
        db, sets = make_db("xtree", rng)
        _, stats = db.knn_query(sets[0], 3)
        (event,) = query_events(enabled)
        assert event["slow"] is True
        explain = event["explain"]
        assert explain["slow_ms_threshold"] == 0.0
        assert explain["sample_rate"] == 0.0
        assert set(explain["phases"]) == {"filter_seconds", "refine_seconds"}
        assert explain["pruning_power"] == stats.pruned / len(db)
        assert explain["overshoot"] == stats.extra_refinements
        assert obs.registry().counter("querylog.slow").value == 1

    def test_fast_queries_not_slow_under_high_threshold(self, enabled, rng):
        querylog.configure(sample_rate=1.0, slow_ms=60_000.0)
        db, sets = make_db("xtree", rng)
        db.knn_query(sets[0], 3)
        (event,) = query_events(enabled)
        assert "slow" not in event and "explain" not in event
        assert obs.registry().counter("querylog.slow").value == 0


class TestSampling:
    def test_half_rate_logs_exactly_half(self, enabled, rng):
        querylog.configure(sample_rate=0.5)
        db, sets = make_db("scan", rng, count=12)
        for i in range(10):
            db.knn_query(sets[i], 3)
        events = query_events(enabled)
        assert len(events) == 5
        reg = obs.registry()
        assert reg.counter("querylog.sampled").value == 5
        assert reg.counter("querylog.dropped").value == 5
        # Counters are never sampled: all ten queries are accounted.
        assert reg.counter("query.count").value == 10

    def test_sampling_pattern_is_reproducible(self):
        def pattern():
            querylog.configure(sample_rate=0.3)
            return [querylog._should_sample() for _ in range(20)]

        first, second = pattern(), pattern()
        assert first == second
        # ~20 * 0.3 samples; the exact count depends on float
        # accumulation but never varies between runs.
        assert 5 <= sum(first) <= 6

    def test_configure_validates(self):
        with pytest.raises(ValueError):
            querylog.configure(sample_rate=1.5)
        with pytest.raises(ValueError):
            querylog.configure(slow_ms=-1.0)


class TestContext:
    def test_inner_frames_win(self):
        with querylog.query_context(mode="exact", backend="xtree"):
            with querylog.query_context(mode="approx"):
                merged = querylog.current_context()
                assert merged == {"mode": "approx", "backend": "xtree"}
            assert querylog.current_context()["mode"] == "exact"
        assert querylog.current_context() == {}

    def test_filter_override_arithmetic(self, enabled):
        with querylog.query_context(filter_seconds=0.25):
            querylog.record_query(
                "knn", {"exact_computations": 2}, 10, seconds=0.75
            )
        (event,) = query_events(enabled)
        assert event["seconds"] == 1.0
        assert event["filter_seconds"] == 0.25

    def test_io_baseline_becomes_delta(self, enabled):
        from repro.index.pages import PageManager

        pages = PageManager(page_size=256)
        handle = pages.allocate(100)
        with querylog.query_context(io_baseline=querylog.io_baseline()):
            pages.read(handle)
            querylog.record_query("knn", {}, 10)
        (event,) = query_events(enabled)
        assert event["io_pages"] == 1
        assert event["io_bytes"] == 100


class TestEngineAndBatchPaths:
    def test_knn_many_amortizes_batch_time(self, enabled, rng):
        from repro.core.queries import FilterRefineEngine

        sets = [rng.normal(size=(3, 6)) for _ in range(20)]
        engine = FilterRefineEngine(sets, capacity=5)
        engine.knn_query_many(sets[:4], 3)
        events = query_events(enabled)
        assert len(events) == 4
        assert all(e["batch"] == 4 for e in events)
        # Per-query seconds are an equal share of the batch wall time.
        assert len({e["seconds"] for e in events}) == 1

    def test_scan_and_subset_are_pure_refinement(self, enabled, rng):
        from repro.core.queries import FilterRefineEngine

        sets = [rng.normal(size=(3, 6)) for _ in range(20)]
        engine = FilterRefineEngine(sets, capacity=5)
        engine.knn_sequential(sets[0], 3)
        engine.knn_refine_subset(sets[1], 3, np.arange(10))
        events = query_events(enabled)
        assert [e["kind"] for e in events] == ["scan", "knn_subset"]
        for event in events:
            assert event["refine_seconds"] == event["seconds"]
            assert event["filter_seconds"] == 0.0


class TestSharded:
    """Scatter-gather queries keep every wide-event invariant.

    The sharded layer records one merged event per query whose stats
    are the (distance, oid)-merge of the per-shard legs; each leg's own
    event carries its ``shard`` context frame.  The PR 9 arithmetic —
    total == filter + refine — holds exactly, with the scatter as the
    filter phase and the merge as the refine phase.
    """

    def make_sharded(self, backend, rng, count=24, dim=6):
        from repro.db import ShardedSimilarityDatabase

        sharded = ShardedSimilarityDatabase(5, shards=3, backend=backend)
        mirror = SimilarityDatabase(capacity=5, backend=backend)
        sets = [
            rng.normal(size=(int(rng.integers(1, 6)), dim))
            for _ in range(count)
        ]
        for oid, vectors in enumerate(sets):
            sharded.add(oid, vectors)
            mirror.add(oid, vectors)
        return sharded, mirror, sets

    def nonempty(self, db):
        return [i for i, shard in enumerate(db.shards) if len(shard)]

    def test_sharded_knn_event_agrees_with_stats(self, enabled, rng):
        db, _, sets = self.make_sharded("xtree", rng)
        _, stats = db.knn_query(sets[0], 3)
        events = query_events(enabled)
        outer = [e for e in events if e["kind"] == "sharded_knn"]
        inner = [e for e in events if e["kind"] != "sharded_knn"]
        assert len(outer) == 1
        event = outer[0]
        for key, value in stats.as_dict().items():
            assert event[key] == value, key
        assert event["backend"] == "xtree"
        assert event["mode"] == "exact"
        assert event["shards"] == 3
        assert event["db_version"] == db.version
        assert event["k"] == 3
        # The phase invariant, exact by construction: the scatter is
        # the filter phase, the merge is the refine phase.
        assert event["seconds"] == pytest.approx(
            event["filter_seconds"] + event["refine_seconds"]
        )
        assert event["n"] == len(db)
        # One leg event per nonempty shard, each stamped with its shard.
        assert sorted(e["shard"] for e in inner) == self.nonempty(db)
        assert all(e["kind"] == "knn" for e in inner)
        assert sum(e["exact_computations"] for e in inner) == (
            stats.exact_computations
        )

    def test_sharded_range_event_agrees_with_stats(self, enabled, rng):
        db, _, sets = self.make_sharded("rstar", rng)
        _, stats = db.range_query(sets[0], 2.0)
        events = query_events(enabled)
        outer = [e for e in events if e["kind"] == "sharded_range"]
        inner = [e for e in events if e["kind"] != "sharded_range"]
        assert len(outer) == 1
        event = outer[0]
        for key, value in stats.as_dict().items():
            assert event[key] == value, key
        assert event["epsilon"] == 2.0
        assert event["shards"] == 3
        assert event["seconds"] == pytest.approx(
            event["filter_seconds"] + event["refine_seconds"]
        )
        assert sorted(e["shard"] for e in inner) == self.nonempty(db)
        assert all(e["kind"] == "range" for e in inner)

    def test_sharded_approx_event_and_stats_match_single_shard(
        self, enabled, rng
    ):
        db, mirror, sets = self.make_sharded("xtree", rng)
        _, stats = db.knn_query(sets[0], 3, mode="approx", shortlist=10)
        _, single_stats = mirror.knn_query(
            sets[0], 3, mode="approx", shortlist=10
        )
        # The global-shortlist reconstruction makes the merged stats
        # equal the single-shard build's, field for field.
        assert stats.as_dict() == single_stats.as_dict()
        events = query_events(enabled)
        outer = [e for e in events if e["kind"] == "sharded_approx_knn"]
        assert len(outer) == 1
        event = outer[0]
        for key, value in stats.as_dict().items():
            assert event[key] == value, key
        assert event["mode"] == "approx"
        assert event["budget"] == 10
        assert event["shortlist_size"] <= 10
        assert event["seconds"] == pytest.approx(
            event["filter_seconds"] + event["refine_seconds"]
        )
        inner = [e for e in events if e["kind"] == "knn_subset"]
        assert inner, "per-shard refine legs should log knn_subset events"
        assert all(e["shard"] in (0, 1, 2) for e in inner)

    def test_sharded_events_respect_sampling(self, enabled, rng):
        querylog.configure(sample_rate=0.0, slow_ms=None)
        db, _, sets = self.make_sharded("scan", rng, count=12)
        db.knn_query(sets[0], 3)
        assert query_events(enabled) == []

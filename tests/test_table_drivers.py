"""Tests for the Table 1/Table 2 experiment drivers at toy scale."""

import numpy as np
import pytest

from repro.evaluation.table1 import permutation_rate_for_k, run_table1
from repro.evaluation.table2 import (
    _query_variants,
    run_one_vector_xtree,
    run_vector_set_filter,
    run_vector_set_scan,
)
from repro.exceptions import ReproError
from tests.conftest import random_vector_sets


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestTable1Driver:
    def test_rates_in_unit_interval(self):
        rows = run_table1(ks=(2, 3), dataset="aircraft")
        # (Car would be slower; any dataset exercises the driver.)
        for row in rows:
            assert 0.0 <= row.permutation_rate <= 1.0
            assert row.mean_set_size <= row.covers
            assert row.pairs_counted > 0

    def test_set_size_grows_with_k(self):
        import os

        os.environ["REPRO_AIRCRAFT_N"] = "30"
        try:
            from repro.evaluation.experiments import prepare_dataset

            bundle = prepare_dataset("aircraft", resolution=15, n=30)
            small = permutation_rate_for_k(bundle, 2)
            large = permutation_rate_for_k(bundle, 6)
            assert large.mean_set_size >= small.mean_set_size
        finally:
            os.environ.pop("REPRO_AIRCRAFT_N", None)


class TestQueryVariants:
    def test_variant_counts(self, rng):
        query = rng.normal(size=(3, 6))
        assert len(_query_variants(query, 1)) == 1
        assert len(_query_variants(query, 48)) == 48
        with pytest.raises(ReproError):
            _query_variants(query, 0)
        with pytest.raises(ReproError):
            _query_variants(query, 49)

    def test_first_variant_is_identity(self, rng):
        query = rng.normal(size=(2, 6))
        first = _query_variants(query, 1)[0]
        assert np.allclose(first, query)


class TestMethodConsistency:
    def test_all_three_methods_agree_on_identity_queries(self, rng):
        """For variants=1 all three methods rank by the same distance,
        so their result distance profiles must coincide."""
        sets = random_vector_sets(rng, 50)
        k = 7
        padded = np.vstack(
            [
                np.vstack([s, np.zeros((k - len(s), 6))]).reshape(-1)
                for s in sets
            ]
        )
        queries = [0, 13, 37]
        _, filter_results = run_vector_set_filter(sets, queries, k, 5, 1)
        _, scan_results = run_vector_set_scan(sets, queries, 5, 1)
        for a, b in zip(filter_results, scan_results):
            assert [round(d, 9) for _, d in a] == [round(d, 9) for _, d in b]

        # The one-vector method ranks by a DIFFERENT distance (padded
        # Euclidean) but must still find the query object itself first.
        _, onevec_results = run_one_vector_xtree(padded, queries, sets, k, 5, 1)
        for query_id, result in zip(queries, onevec_results):
            assert result[0][0] == query_id
            assert result[0][1] == pytest.approx(0.0)

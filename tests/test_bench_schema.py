"""The unified bench-output schema (:mod:`repro.bench.schema`)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA_ID,
    load_bench_files,
    render_report,
    validate_records,
    write_bench,
)
from repro.exceptions import ReproError

GOOD = [
    {
        "op": "index_knn",
        "backend": "xtree",
        "n": 1000,
        "pointer_seconds": 0.5,
        "batched_seconds": 0.1,
        "speedup": 5.0,
    },
    {"op": "approx_pareto_point", "budget": 40, "recall": 0.96, "reduction": 12.5},
    {"op": "sketch_params", "params": {"width": 512, "pool": "or"}},
]


class TestValidateRecords:
    def test_good_records_pass(self):
        assert validate_records(GOOD) == []

    def test_not_a_list(self):
        assert validate_records({"op": "x"})

    @pytest.mark.parametrize(
        "record,needle",
        [
            ({"backend": "xtree"}, "op"),
            ({"op": ""}, "op"),
            ({"op": 3}, "op"),
            ({"op": "x", "backend": 7}, "backend"),
            ({"op": "x", "n": -1}, "n"),
            ({"op": "x", "n": True}, "n"),
            ({"op": "x", "seconds": float("nan")}, "seconds"),
            ({"op": "x", "build_seconds": -0.1}, "build_seconds"),
            ({"op": "x", "speedup": 0.0}, "speedup"),
            ({"op": "x", "load_speedup": float("inf")}, "load_speedup"),
            ({"op": "x", "extra": [1, 2]}, "extra"),
            ({"op": "x", "params": {"bad": [1]}}, "params.bad"),
        ],
    )
    def test_violations_are_reported(self, record, needle):
        errors = validate_records([record])
        assert errors and any(needle in e for e in errors)

    def test_non_dict_record(self):
        assert validate_records(["not-a-record"])


class TestWriteBench:
    def test_writes_pinned_format(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        write_bench(path, GOOD, suite="kernels", seed=7, label="unit")
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_ID
        assert payload["suite"] == "kernels"
        assert payload["seed"] == 7
        assert payload["label"] == "unit"
        assert payload["records"] == GOOD

    def test_invalid_records_abort_before_writing(self, tmp_path):
        path = tmp_path / "BENCH_BAD.json"
        with pytest.raises(ReproError):
            write_bench(
                path, [{"op": "x", "seconds": -1.0}], suite="kernels"
            )
        assert not path.exists()


class TestLoadAndReport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        write_bench(path, GOOD, suite="kernels", seed=7)
        [(got_path, meta, records)] = load_bench_files([path])
        assert got_path == path
        assert meta["suite"] == "kernels"
        assert records == GOOD

    def test_legacy_bare_list_accepted(self, tmp_path):
        path = tmp_path / "BENCH_OLD.json"
        path.write_text(json.dumps(GOOD))
        [(_, meta, records)] = load_bench_files([path])
        assert meta["schema"] == "legacy"
        assert records == GOOD

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "BENCH_BAD.json"
        path.write_text('"just a string"')
        with pytest.raises(ReproError):
            load_bench_files([path])
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_bench_files([path])

    def test_render_report_tabulates_everything(self, tmp_path):
        new = tmp_path / "BENCH_NEW.json"
        write_bench(new, GOOD, suite="kernels", seed=7)
        old = tmp_path / "BENCH_OLD.json"
        old.write_text(json.dumps([{"op": "legacy_op", "seconds": 1.25}]))
        text = render_report(load_bench_files([new, old]))
        assert "BENCH_NEW.json" in text and "BENCH_OLD.json" in text
        assert "index_knn" in text and "legacy_op" in text
        assert "5.00x" in text
        assert "recall=0.96" in text


class TestBenchReportCli:
    def test_report_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        path = tmp_path / "BENCH_X.json"
        write_bench(path, GOOD, suite="kernels", seed=7)
        assert main(["bench", "report", "--files", str(path)]) == 0
        assert "index_knn" in capsys.readouterr().out

    def test_report_no_files(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "report"]) == 2

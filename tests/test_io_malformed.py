"""Malformed-input corpus, fuzzing, and round-trip properties for the parsers.

The contract under test: no parser entry point (`read_stl`, `read_off`,
`load_grid`, `ObjectDatabase.load`) may raise anything outside the
:class:`ReproError` hierarchy on arbitrary input bytes — never a bare
``ValueError``/``IndexError``/``MemoryError`` — and hostile headers must
fail fast without large allocations.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ReproError, StorageError
from repro.geometry.mesh import TriangleMesh, box_mesh
from repro.io import read_mesh
from repro.io.database import ObjectDatabase
from repro.io.off import read_off, write_off
from repro.io.stl import read_stl, write_stl_ascii, write_stl_binary
from repro.io.vox import load_grid

# -- hand-crafted malformed corpus --------------------------------------------

OFF_CORPUS = {
    "empty": "",
    "only-comments": "# nothing here\n# at all\n",
    "header-only": "OFF\n",
    "counts-not-numbers": "OFF\nnot numbers here\n",
    "negative-counts": "OFF\n-3 1 0\n0 0 0\n",
    "zero-vertices": "OFF\n0 0 0\n",
    "truncated-vertices": "OFF\n5 2 0\n0 0 0\n1 0 0\n",
    "vertex-too-few-coords": "OFF\n3 1 0\n0 0\n1 0\n0 1\n3 0 1 2\n",
    "vertex-not-a-number": "OFF\n3 1 0\n0 0 zero\n1 0 0\n0 1 0\n3 0 1 2\n",
    "nan-vertex": "OFF\n3 1 0\n0 0 nan\n1 0 0\n0 1 0\n3 0 1 2\n",
    "inf-vertex": "OFF\n3 1 0\ninf 0 0\n1 0 0\n0 1 0\n3 0 1 2\n",
    "face-index-out-of-bounds": "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 7\n",
    "face-index-negative": "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 -1 2\n",
    "face-arity-2": "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n2 0 1\n",
    "face-arity-mismatch": "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n4 0 1 2\n",
    "face-not-numbers": "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\nthree 0 1 2\n",
    "huge-declared-counts": "OFF\n99999999 99999999 0\n0 0 0\n",
}

STL_CORPUS = {
    "empty": b"",
    "too-short-binary": b"\x00" * 50,
    "truncated-binary": b"\x00" * 80 + struct.pack("<I", 10) + b"\x00" * 60,
    "header-declares-2^31-triangles": b"\x00" * 80 + struct.pack("<I", 2**31),
    "ascii-no-triangles": b"solid empty\nendsolid empty\n",
    "ascii-partial-triangle": b"solid x\nvertex 0 0 0\nvertex 1 0 0\nendsolid x\n",
    "ascii-bad-vertex": (
        b"solid x\nvertex a b c\nvertex 1 0 0\nvertex 0 1 0\nendsolid x\n"
    ),
    "ascii-short-vertex": (
        b"solid x\nvertex 0 0\nvertex 1 0 0\nvertex 0 1 0\nendsolid x\n"
    ),
    "ascii-nan-vertex": (
        b"solid x\nvertex nan 0 0\nvertex 1 0 0\nvertex 0 1 0\nendsolid x\n"
    ),
    "ascii-inf-vertex": (
        b"solid x\nvertex inf 0 0\nvertex 1 0 0\nvertex 0 1 0\nendsolid x\n"
    ),
    "binary-masquerading-as-ascii": b"solid \xff\xfe\xfd" + b"\x00" * 20,
}


class TestOffCorpus:
    @pytest.mark.parametrize("name", sorted(OFF_CORPUS))
    def test_raises_storage_error(self, name, tmp_path):
        path = tmp_path / f"{name}.off"
        path.write_text(OFF_CORPUS[name])
        with pytest.raises(StorageError):
            read_off(path)

    def test_face_index_error_names_the_line(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text(OFF_CORPUS["face-index-out-of-bounds"])
        with pytest.raises(StorageError, match=r":6: face index 7"):
            read_off(path)

    def test_arity_error_names_the_line(self, tmp_path):
        path = tmp_path / "bad.off"
        path.write_text(OFF_CORPUS["face-arity-2"])
        with pytest.raises(StorageError, match=r":6: face with arity 2"):
            read_off(path)

    def test_binary_junk_with_off_suffix(self, tmp_path):
        path = tmp_path / "binary.off"
        path.write_bytes(b"OFF\n\xff\xfe\x00\x9c junk")
        with pytest.raises(StorageError):
            read_off(path)


class TestStlCorpus:
    @pytest.mark.parametrize("name", sorted(STL_CORPUS))
    def test_raises_storage_error(self, name, tmp_path):
        path = tmp_path / f"{name}.stl"
        path.write_bytes(STL_CORPUS[name])
        with pytest.raises(StorageError):
            read_stl(path)

    def test_huge_declared_count_fails_fast_without_allocating(self, tmp_path):
        """An 84-byte file declaring 2^31 triangles must be rejected on
        the header alone (a naive reader would try to build a ~100 GB
        buffer)."""
        path = tmp_path / "bomb.stl"
        path.write_bytes(b"\x00" * 80 + struct.pack("<I", 2**31))
        with pytest.raises(StorageError, match="declares 2147483648 triangles"):
            read_stl(path)

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "part.obj"
        path.write_text("v 0 0 0\n")
        with pytest.raises(StorageError):
            read_mesh(path)


class TestVoxMalformed:
    def test_junk_bytes_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip")
        with pytest.raises(StorageError):
            load_grid(path)

    def test_implausible_resolution_rejected(self, tmp_path):
        path = tmp_path / "huge.npz"
        np.savez_compressed(
            path,
            packed=np.zeros(2, dtype=np.uint8),
            resolution=np.array([10**6]),
            origin=np.zeros(3),
            voxel_size=np.array([1.0]),
        )
        with pytest.raises(StorageError, match="implausible resolution"):
            load_grid(path)

    def test_truncated_occupancy_rejected(self, tmp_path):
        path = tmp_path / "short.npz"
        np.savez_compressed(
            path,
            packed=np.zeros(2, dtype=np.uint8),
            resolution=np.array([15]),
            origin=np.zeros(3),
            voxel_size=np.array([1.0]),
        )
        with pytest.raises(StorageError, match="truncated"):
            load_grid(path)

    def test_wrong_dtype_rejected(self, tmp_path):
        path = tmp_path / "floats.npz"
        np.savez_compressed(
            path,
            packed=np.zeros(64, dtype=float),
            resolution=np.array([4]),
            origin=np.zeros(3),
            voxel_size=np.array([1.0]),
        )
        with pytest.raises(StorageError, match="dtype"):
            load_grid(path)


# -- deterministic fuzzing ----------------------------------------------------

PREFIXES = [b"", b"solid ", b"OFF\n", b"PK\x03\x04"]


@pytest.mark.parametrize("seed", range(24))
def test_parsers_never_leak_foreign_exceptions(seed, tmp_path):
    """Arbitrary bytes either parse or raise inside the ReproError
    hierarchy — across every parser entry point."""
    rng = np.random.default_rng(seed)
    size = int(rng.integers(0, 400))
    blob = PREFIXES[seed % len(PREFIXES)] + rng.integers(
        0, 256, size=size, dtype=np.uint8
    ).tobytes()
    for suffix, reader in ((".stl", read_stl), (".off", read_off), (".npz", load_grid)):
        path = tmp_path / f"fuzz{suffix}"
        path.write_bytes(blob)
        try:
            reader(path)
        except ReproError:
            pass

    path = tmp_path / "fuzz-db.npz"
    path.write_bytes(blob)
    for strict in (True, False):
        try:
            ObjectDatabase.load(path, strict=strict)
        except ReproError:
            pass


@pytest.mark.parametrize("seed", range(12))
def test_bitflipped_valid_files_stay_inside_the_hierarchy(seed, tmp_path):
    """Flipping bytes of a valid STL/OFF either still parses or raises a
    ReproError — never a foreign exception."""
    rng = np.random.default_rng(1000 + seed)
    mesh = box_mesh(size=(1.0, 2.0, 0.5))
    stl_path = tmp_path / "part.stl"
    off_path = tmp_path / "part.off"
    write_stl_binary(mesh, stl_path)
    write_off(mesh, off_path)
    for path in (stl_path, off_path):
        data = bytearray(path.read_bytes())
        for _ in range(6):
            position = int(rng.integers(0, len(data)))
            data[position] ^= int(rng.integers(1, 256))
        path.write_bytes(bytes(data))
        try:
            read_mesh(path)
        except ReproError:
            pass


# -- round-trip properties ----------------------------------------------------


@st.composite
def triangle_meshes(draw):
    n_vertices = draw(st.integers(3, 10))
    vertices = draw(
        arrays(
            float,
            (n_vertices, 3),
            elements=st.floats(-100, 100, allow_nan=False, width=32),
        )
    )
    n_faces = draw(st.integers(1, 6))
    faces = draw(
        arrays(np.int64, (n_faces, 3), elements=st.integers(0, n_vertices - 1))
    )
    return TriangleMesh(vertices, faces)


class TestRoundTripProperties:
    @settings(max_examples=25, deadline=None)
    @given(mesh=triangle_meshes())
    def test_off_roundtrip(self, mesh, tmp_path_factory):
        path = tmp_path_factory.mktemp("off") / "mesh.off"
        write_off(mesh, path)
        loaded = read_off(path)
        assert np.allclose(loaded.vertices, mesh.vertices, rtol=1e-6, atol=1e-9)
        assert np.array_equal(loaded.faces, mesh.faces)

    @settings(max_examples=25, deadline=None)
    @given(mesh=triangle_meshes())
    def test_binary_stl_roundtrip(self, mesh, tmp_path_factory):
        path = tmp_path_factory.mktemp("stl") / "mesh.stl"
        write_stl_binary(mesh, path)
        loaded = read_stl(path)
        assert loaded.num_faces == mesh.num_faces
        assert np.allclose(
            loaded.triangles(), mesh.triangles(), rtol=1e-5, atol=1e-4
        )

    @settings(max_examples=25, deadline=None)
    @given(mesh=triangle_meshes())
    def test_ascii_stl_roundtrip(self, mesh, tmp_path_factory):
        path = tmp_path_factory.mktemp("stl") / "mesh.stl"
        write_stl_ascii(mesh, path)
        loaded = read_stl(path)
        assert loaded.num_faces == mesh.num_faces
        assert np.allclose(
            loaded.triangles(), mesh.triangles(), rtol=1e-6, atol=1e-9
        )

"""Tests for extended centroids and the Lemma 2 lower bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.centroid import centroid_lower_bound, extended_centroid, norm_weight
from repro.core.min_matching import min_matching_distance
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError

small_sets = st.integers(1, 6).flatmap(
    lambda m: arrays(
        float, (m, 4), elements=st.floats(-20, 20, allow_nan=False, width=32)
    )
)


class TestExtendedCentroid:
    def test_full_set_is_plain_mean(self, rng):
        x = rng.normal(size=(7, 5))
        assert np.allclose(extended_centroid(x, 7), x.mean(axis=0))

    def test_small_set_padded_with_omega(self):
        x = np.array([[6.0, 0.0]])
        centroid = extended_centroid(x, 3)  # omega defaults to origin
        assert np.allclose(centroid, [2.0, 0.0])

    def test_custom_omega(self):
        x = np.array([[6.0, 0.0]])
        omega = np.array([3.0, 3.0])
        centroid = extended_centroid(x, 3, omega)
        assert np.allclose(centroid, [(6 + 2 * 3) / 3, 2.0])

    def test_vector_set_input(self, rng):
        vs = VectorSet(rng.normal(size=(3, 6)), capacity=7)
        assert np.allclose(extended_centroid(vs, 7), extended_centroid(vs.vectors, 7))

    def test_capacity_below_size_rejected(self, rng):
        with pytest.raises(DistanceError):
            extended_centroid(rng.normal(size=(5, 3)), 4)

    def test_wrong_omega_dimension_rejected(self, rng):
        with pytest.raises(DistanceError):
            extended_centroid(rng.normal(size=(2, 3)), 4, omega=np.zeros(2))


class TestNormWeight:
    def test_default_is_origin_norm(self, rng):
        x = rng.normal(size=(5, 3))
        assert np.allclose(norm_weight()(x), np.linalg.norm(x, axis=1))

    def test_shifted_reference(self, rng):
        x = rng.normal(size=(5, 3))
        omega = np.ones(3)
        assert np.allclose(norm_weight(omega)(x), np.linalg.norm(x - 1.0, axis=1))


class TestLemma2:
    """k * ||C(X) - C(Y)|| <= d_mm(X, Y) — the filter's correctness."""

    @given(small_sets, small_sets)
    @settings(max_examples=100, deadline=None)
    def test_lower_bound_property(self, x, y):
        k = 8
        bound = centroid_lower_bound(
            extended_centroid(x, k), extended_centroid(y, k), k
        )
        exact = min_matching_distance(x, y)
        assert bound <= exact + 1e-6

    def test_bound_is_tight_for_singletons(self, rng):
        """For two singleton sets with k = 1 the bound is exact."""
        x = rng.normal(size=(1, 3))
        y = rng.normal(size=(1, 3))
        bound = centroid_lower_bound(
            extended_centroid(x, 1), extended_centroid(y, 1), 1
        )
        assert bound == pytest.approx(min_matching_distance(x, y))

    def test_bound_scales_with_k(self, rng):
        x = rng.normal(size=(2, 3))
        y = rng.normal(size=(2, 3))
        c_x2, c_y2 = extended_centroid(x, 2), extended_centroid(y, 2)
        assert centroid_lower_bound(c_x2, c_y2, 2) == pytest.approx(
            2 * np.linalg.norm(c_x2 - c_y2)
        )

    def test_invalid_k_rejected(self):
        with pytest.raises(DistanceError):
            centroid_lower_bound(np.zeros(3), np.zeros(3), 0)

"""Cross-shard differential machine: sharded == single-shard, always.

The equality contract of :mod:`repro.db.sharded`: a scatter-gather
query against K independent shards returns *byte-identical* results —
same ids, same float distances, same order — to a single-shard
``SimilarityDatabase`` holding the same objects.  A hypothesis rule
machine drives arbitrary add/remove/update/compact/reshard sequences
against a (sharded, mirror) pair per backend and checks knn, range,
batch, and approx-mode answers after every step; integer coordinates
keep every distance exactly representable, so the comparison is
literal equality, never approximate.

The non-stateful tests cover the seams the machine can't reach:
routing stability, manifest round-trips (serial and process-pool
save/load), the parallel batch path against its serial answer, and the
stale-snapshot guard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.queries import QueryStats
from repro.db import (
    BACKENDS,
    ShardedSimilarityDatabase,
    SimilarityDatabase,
    open_database,
    shard_of,
)
from repro.exceptions import QueryError, StorageError

CAPACITY = 3
DIM = 3

coordinates = st.integers(min_value=-16, max_value=16)
vector_sets = st.lists(
    st.tuples(*[coordinates] * DIM), min_size=1, max_size=CAPACITY
).map(lambda rows: np.asarray(rows, dtype=float))


def pairs(results):
    return [(m.object_id, m.distance) for m in results]


class ShardedDifferentialMachine(RuleBasedStateMachine):
    """One (sharded, mirror) pair per backend; equality after every step."""

    def __init__(self):
        super().__init__()
        self.dbs = {
            backend: (
                ShardedSimilarityDatabase(
                    CAPACITY, shards=3, backend=backend, index_capacity=4
                ),
                SimilarityDatabase(
                    CAPACITY, backend=backend, index_capacity=4
                ),
            )
            for backend in BACKENDS
        }
        self.model: dict[int, np.ndarray] = {}
        self.next_oid = 0

    # -- mutations ---------------------------------------------------------

    @rule(arr=vector_sets, stride=st.integers(min_value=1, max_value=9))
    def add(self, arr, stride):
        # Strided ids keep the CRC routing honest on sparse id spaces.
        oid = self.next_oid
        self.next_oid += stride
        for sharded, mirror in self.dbs.values():
            sharded.add(oid, arr)
            mirror.add(oid, arr)
        self.model[oid] = arr

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        for sharded, mirror in self.dbs.values():
            assert sharded.remove(oid) is True
            assert mirror.remove(oid) is True
        del self.model[oid]

    @rule()
    def remove_absent(self):
        missing = self.next_oid + 1
        for sharded, mirror in self.dbs.values():
            assert sharded.remove(missing) is False
            assert mirror.remove(missing) is False

    @precondition(lambda self: self.model)
    @rule(arr=vector_sets, data=st.data())
    def update(self, arr, data):
        oid = data.draw(st.sampled_from(sorted(self.model)))
        for sharded, mirror in self.dbs.values():
            sharded.update(oid, arr)
            mirror.update(oid, arr)
        self.model[oid] = arr

    @rule()
    def compact(self):
        for sharded, mirror in self.dbs.values():
            sharded.compact()
            mirror.compact()

    @rule(new_shards=st.integers(min_value=1, max_value=5))
    def reshard(self, new_shards):
        # Only the sharded side repartitions; the mirror is untouched —
        # query equality must be insensitive to the partitioning.
        for sharded, _ in self.dbs.values():
            sharded.reshard(new_shards)
            assert sharded.n_shards == new_shards

    @rule(new_shards=st.integers(min_value=1, max_value=4))
    def rebalance_on_compact(self, new_shards):
        for sharded, _ in self.dbs.values():
            sharded.compact(shards=new_shards)
            assert sharded.n_shards == new_shards

    # -- drawn queries ------------------------------------------------------

    @precondition(lambda self: self.model)
    @rule(query=vector_sets, k=st.integers(min_value=1, max_value=6))
    def knn_matches(self, query, k):
        for backend, (sharded, mirror) in self.dbs.items():
            got, _ = sharded.knn_query(query, k)
            want, _ = mirror.knn_query(query, k)
            assert pairs(got) == pairs(want), backend

    @precondition(lambda self: self.model)
    @rule(query=vector_sets, epsilon=st.floats(0.0, 12.0, allow_nan=False))
    def range_matches(self, query, epsilon):
        for backend, (sharded, mirror) in self.dbs.items():
            got, _ = sharded.range_query(query, epsilon)
            want, _ = mirror.range_query(query, epsilon)
            assert pairs(got) == pairs(want), backend

    @precondition(lambda self: self.model)
    @rule(
        query=vector_sets,
        k=st.integers(min_value=1, max_value=4),
        budget=st.integers(min_value=1, max_value=10),
    )
    def approx_matches(self, query, k, budget):
        # Approx mode must reconstruct the *global* Hamming shortlist:
        # results AND merged stats equal the single-shard build's.
        for backend, (sharded, mirror) in self.dbs.items():
            got, got_stats = sharded.knn_query(
                query, k, mode="approx", shortlist=budget
            )
            want, want_stats = mirror.knn_query(
                query, k, mode="approx", shortlist=budget
            )
            assert pairs(got) == pairs(want), backend
            assert got_stats.as_dict() == want_stats.as_dict(), backend

    @precondition(lambda self: self.model)
    @rule(queries=st.lists(vector_sets, min_size=1, max_size=3))
    def batch_matches(self, queries):
        for backend, (sharded, mirror) in self.dbs.items():
            got = sharded.knn_query_many(queries, 4)
            want = mirror.knn_query_many(queries, 4)
            assert [pairs(r) for r, _ in got] == [
                pairs(r) for r, _ in want
            ], backend

    # -- standing invariants ------------------------------------------------

    @invariant()
    def membership_agrees(self):
        expected = sorted(self.model)
        for backend, (sharded, mirror) in self.dbs.items():
            assert sharded.object_ids() == expected, backend
            assert mirror.object_ids() == expected, backend
            assert len(sharded) == len(mirror) == len(expected)
            assert sum(len(s) for s in sharded.shards) == len(expected)

    @invariant()
    def probe_query_matches(self):
        # A deterministic probe after *every* step (rule-drawn queries
        # only run when hypothesis picks those rules).
        if not self.model:
            return
        probe = np.asarray([[1.0, -2.0, 3.0]])
        for backend, (sharded, mirror) in self.dbs.items():
            got, _ = sharded.knn_query(probe, 3)
            want, _ = mirror.knn_query(probe, 3)
            assert pairs(got) == pairs(want), backend


TestShardedDifferential = ShardedDifferentialMachine.TestCase


# -- routing ---------------------------------------------------------------


def test_routing_is_stable_and_total():
    for oid in (0, 1, 7, 10**9, -3):
        owners = [shard_of(oid, 4) for _ in range(3)]
        assert len(set(owners)) == 1
        assert 0 <= owners[0] < 4
    assert shard_of(123, 1) == 0
    with pytest.raises(QueryError):
        shard_of(1, 0)


def test_routing_spreads_dense_ids():
    owners = {shard_of(oid, 4) for oid in range(64)}
    assert owners == {0, 1, 2, 3}


# -- persistence seams -----------------------------------------------------


def build_pair(rng, count=30, shards=4, backend="xtree"):
    sharded = ShardedSimilarityDatabase(CAPACITY, shards=shards, backend=backend)
    mirror = SimilarityDatabase(CAPACITY, backend=backend)
    sets = {}
    for oid in range(count):
        arr = rng.integers(-8, 9, size=(int(rng.integers(1, CAPACITY + 1)), DIM)).astype(float)
        sharded.add(oid, arr)
        mirror.add(oid, arr)
        sets[oid] = arr
    return sharded, mirror, sets


@pytest.mark.parametrize("n_jobs", [None, 2])
def test_save_load_roundtrip(tmp_path, rng, n_jobs):
    sharded, mirror, sets = build_pair(rng)
    root = sharded.save(tmp_path / "layout", n_jobs=n_jobs)
    assert (root / "sharded.json").exists()
    back = ShardedSimilarityDatabase.load(root, n_jobs=n_jobs)
    assert back.n_shards == 4
    assert back.object_ids() == sorted(sets)
    query = sets[0]
    assert pairs(back.knn_query(query, 8)[0]) == pairs(
        mirror.knn_query(query, 8)[0]
    )
    assert pairs(
        back.knn_query(query, 5, mode="approx", shortlist=12)[0]
    ) == pairs(mirror.knn_query(query, 5, mode="approx", shortlist=12)[0])
    # Reloaded shards are node-for-node what was saved.
    assert back.index_digests() == sharded.index_digests()
    assert back.sketch_digests() == sharded.sketch_digests()


def test_open_database_dispatches(tmp_path, rng):
    sharded, mirror, sets = build_pair(rng, count=12)
    sharded_root = sharded.save(tmp_path / "sharded")
    single_path = mirror.save(tmp_path / "single.npz")
    opened = open_database(sharded_root)
    assert isinstance(opened, ShardedSimilarityDatabase)
    assert isinstance(open_database(single_path), SimilarityDatabase)
    with pytest.raises(StorageError):
        ShardedSimilarityDatabase.load(tmp_path)


def test_save_prunes_orphan_archives_after_reshard(tmp_path, rng):
    sharded, _, sets = build_pair(rng, count=12, shards=4)
    root = sharded.save(tmp_path / "layout")
    assert len(list(root.glob("shard-*.npz"))) == 4
    sharded.reshard(2)
    sharded.save(root)
    assert len(list(root.glob("shard-*.npz"))) == 2
    back = ShardedSimilarityDatabase.load(root)
    assert back.n_shards == 2
    assert back.object_ids() == sorted(sets)


def test_parallel_batch_matches_serial(tmp_path, rng):
    sharded, mirror, sets = build_pair(rng)
    queries = [sets[1], sets[2], sets[3]]
    sharded.save(tmp_path / "layout")
    parallel = sharded.knn_query_many(queries, 6, n_jobs=2)
    serial = sharded.knn_query_many(queries, 6)
    single = [mirror.knn_query(q, 6) for q in queries]
    assert [pairs(r) for r, _ in parallel] == [pairs(r) for r, _ in serial]
    assert [pairs(r) for r, _ in parallel] == [pairs(r) for r, _ in single]
    assert [s.as_dict() for _, s in parallel] == [
        s.as_dict() for _, s in serial
    ]
    assert len(sharded.last_parallel_legs) == sharded.n_shards


def test_parallel_batch_guards(tmp_path, rng):
    sharded, _, sets = build_pair(rng, count=10)
    with pytest.raises(QueryError, match="saved sharded snapshot"):
        sharded.knn_query_many([sets[0]], 3, n_jobs=2)
    sharded.save(tmp_path / "layout")
    sharded.add(999, sets[0])
    with pytest.raises(QueryError, match="stale"):
        sharded.knn_query_many([sets[0]], 3, n_jobs=2)
    with pytest.raises(QueryError, match="exact"):
        sharded.knn_query_many([sets[0]], 3, mode="approx", n_jobs=2)


def test_constructor_and_mode_validation(tmp_path):
    with pytest.raises(QueryError):
        ShardedSimilarityDatabase(CAPACITY, shards=0)
    with pytest.raises(QueryError):
        ShardedSimilarityDatabase(CAPACITY, path=tmp_path / "x")
    db = ShardedSimilarityDatabase(CAPACITY, shards=2)
    with pytest.raises(QueryError):
        db.knn_query(np.ones((1, DIM)), 3, mode="nope")
    with pytest.raises(QueryError):
        db.knn_query(np.ones((1, DIM)), 3, shortlist=5)
    with pytest.raises(QueryError):
        db.reshard(0)
    with pytest.raises(QueryError):
        db.save()
    results, stats = db.knn_query(np.ones((1, DIM)), 3)
    assert results == [] and stats.as_dict() == QueryStats().as_dict()

"""Tests for the VectorSet value type."""

import numpy as np
import pytest

from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError


class TestVectorSet:
    def test_basic_properties(self, rng):
        vs = VectorSet(rng.normal(size=(4, 6)), capacity=7)
        assert vs.size == len(vs) == 4
        assert vs.dimension == 6
        assert vs.capacity == 7

    def test_immutability(self, rng):
        vs = VectorSet(rng.normal(size=(2, 3)), capacity=5)
        with pytest.raises(ValueError):
            vs.vectors[0, 0] = 99.0

    def test_source_array_is_copied(self):
        source = np.zeros((2, 3))
        vs = VectorSet(source, capacity=4)
        source[0, 0] = 42.0
        assert vs.vectors[0, 0] == 0.0

    def test_nbytes_without_padding(self, rng):
        vs = VectorSet(rng.normal(size=(3, 6)), capacity=7)
        assert vs.nbytes() == 3 * 6 * 8  # not 7 * 6 * 8 (Section 4.1)

    def test_padded_fills_with_zeros(self, rng):
        vs = VectorSet(rng.normal(size=(2, 6)), capacity=5)
        padded = vs.padded()
        assert padded.shape == (5, 6)
        assert np.allclose(padded[2:], 0.0)
        assert np.allclose(padded[:2], vs.vectors)

    def test_padded_custom_fill(self, rng):
        vs = VectorSet(rng.normal(size=(1, 3)), capacity=3)
        fill = np.array([1.0, 2.0, 3.0])
        padded = vs.padded(fill)
        assert np.allclose(padded[1], fill)

    def test_iteration(self, rng):
        data = rng.normal(size=(3, 2))
        vs = VectorSet(data, capacity=3)
        assert len(list(vs)) == 3

    def test_empty_rejected(self):
        with pytest.raises(DistanceError):
            VectorSet(np.empty((0, 6)), capacity=7)

    def test_over_capacity_rejected(self, rng):
        with pytest.raises(DistanceError):
            VectorSet(rng.normal(size=(8, 6)), capacity=7)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(DistanceError):
            VectorSet(rng.normal(size=6), capacity=7)

    def test_wrong_fill_dimension_rejected(self, rng):
        vs = VectorSet(rng.normal(size=(2, 6)), capacity=4)
        with pytest.raises(DistanceError):
            vs.padded(np.zeros(5))

"""Subprocess crash/recover matrix: real ``os._exit`` kills.

Unlike the in-process ``InjectedCrash`` tests, these run the mutation
plan in a child interpreter with ``REPRO_CRASH_POINT`` set, let the
harness hard-kill it mid-operation (no ``finally`` blocks, no atexit —
exactly like SIGKILL or a power cut), then recover in the parent and
check the crash-consistency contract:

* under ``fsync=always`` every *acknowledged* mutation survives —
  recovery equals a fresh build over ``plan[:M]`` with ``M >= acked``;
* knn/range answers from the recovered database are byte-identical to
  that fresh build's, across every index backend.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.db import BACKENDS, SimilarityDatabase
from repro.testing.faults import CRASH_ENV, CRASH_EXIT_CODE, CRASH_POINTS

from tests.test_db_durable import (
    CAPACITY,
    assert_equivalent,
    fresh_build,
    make_plan,
    matches_some_prefix,
)

WORKER = """\
import json, os, sys
import numpy as np
from repro.db import SimilarityDatabase

dbdir, planfile, ackfile, backend = sys.argv[1:5]
with open(planfile) as handle:
    plan = json.load(handle)
db = SimilarityDatabase(
    plan["capacity"], backend=backend, durable=True, path=dbdir,
    fsync="always",
)
ack = open(ackfile, "w")
for i, (op, oid, arr) in enumerate(plan["steps"]):
    if op == "add":
        db.add(oid, np.asarray(arr, dtype=float))
    elif op == "remove":
        db.remove(oid)
    elif op == "update":
        db.update(oid, np.asarray(arr, dtype=float))
    elif op == "compact":
        db.compact()
    elif op == "checkpoint":
        db.checkpoint()
    # The ack is this harness's stand-in for replying to a client:
    # fsynced, so the parent knows exactly which mutations were
    # acknowledged before the kill.
    ack.write(f"{i}\\n")
    ack.flush()
    os.fsync(ack.fileno())
db.close()
ack.close()
"""

# Hit counts chosen so every point actually fires mid-plan: the plan
# from make_plan() contains one checkpoint (mid-snapshot-write,
# mid-checkpoint-swap), one compact (mid-compaction), and dozens of
# appends (after-wal-append fires on the 7th).  The single-database
# plan never reaches "between-shard-checkpoints" (it fires only inside
# ShardedSimilarityDatabase.checkpoint) — its kill matrix lives in
# tests/test_sharded_crash.py, so this suite parametrizes over the
# specs it arms rather than all of CRASH_POINTS.
CRASH_SPECS = {
    "after-wal-append": "after-wal-append:7",
    "mid-snapshot-write": "mid-snapshot-write",
    "mid-checkpoint-swap": "mid-checkpoint-swap",
    "mid-compaction": "mid-compaction",
}


def run_worker(tmp_path, plan, backend, crash_spec=None):
    worker = tmp_path / "worker.py"
    worker.write_text(WORKER)
    planfile = tmp_path / "plan.json"
    planfile.write_text(
        json.dumps(
            {
                "capacity": CAPACITY,
                "steps": [
                    [op, oid, None if arr is None else arr.tolist()]
                    for op, oid, arr in plan
                ],
            }
        )
    )
    ackfile = tmp_path / "acks"
    dbdir = tmp_path / "db"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    env.pop(CRASH_ENV, None)
    if crash_spec is not None:
        env[CRASH_ENV] = crash_spec
    proc = subprocess.run(
        [sys.executable, str(worker), str(dbdir), str(planfile),
         str(ackfile), backend],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    acked = (
        len(ackfile.read_text().splitlines()) if ackfile.exists() else 0
    )
    return proc, dbdir, acked


def test_specs_cover_single_database_points():
    """Every registered crash point is exercised somewhere: the four
    single-database points here, the sharded gap in the sharded kill
    matrix."""
    assert set(CRASH_SPECS) == set(CRASH_POINTS) - {"between-shard-checkpoints"}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("point", sorted(CRASH_SPECS))
def test_kill_and_recover(point, backend, tmp_path, rng):
    plan = make_plan(rng)
    proc, dbdir, acked = run_worker(
        tmp_path, plan, backend, crash_spec=CRASH_SPECS[point]
    )
    assert proc.returncode == CRASH_EXIT_CODE, (
        f"worker did not die at {point}: rc={proc.returncode}\n{proc.stderr}"
    )
    assert acked < len(plan), "crash fired only after the whole plan ran"
    recovered = SimilarityDatabase.load(dbdir)
    state_plan = [s for s in plan if s[0] != "checkpoint"]
    acked_state = len([s for s in plan[:acked] if s[0] != "checkpoint"])
    assert matches_some_prefix(
        recovered, state_plan, backend, acked_state, rng
    ), (
        f"recovered state after {point} kill matches no prefix >= the "
        f"{acked} acknowledged mutations"
    )
    recovered.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_clean_run_control(backend, tmp_path, rng):
    """Without a crash spec the worker completes, and recovery equals a
    fresh build over the entire plan — the baseline the kill matrix is
    measured against."""
    plan = make_plan(rng)
    proc, dbdir, acked = run_worker(tmp_path, plan, backend)
    assert proc.returncode == 0, proc.stderr
    assert acked == len(plan)
    recovered = SimilarityDatabase.load(dbdir)
    assert not recovered.last_recovery.degraded
    assert_equivalent(recovered, fresh_build(plan, backend), rng)
    recovered.close()


def test_crash_env_spec_counts_hits(tmp_path, rng):
    """`name:n` fires on the n-th hit: a later hit count acknowledges
    strictly more mutations before the kill."""
    plan = make_plan(rng)
    early = tmp_path / "early"
    late = tmp_path / "late"
    early.mkdir()
    late.mkdir()
    _, _, acked_early = run_worker(
        early, plan, "xtree", crash_spec="after-wal-append:2"
    )
    _, _, acked_late = run_worker(
        late, plan, "xtree", crash_spec="after-wal-append:12"
    )
    assert acked_early < acked_late

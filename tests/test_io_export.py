"""Tests for the CSV export helpers."""

import csv

import numpy as np
import pytest

from repro.clustering.optics import ClusterOrdering
from repro.exceptions import StorageError
from repro.io.export import (
    export_distance_matrix_csv,
    export_reachability_csv,
    export_table_csv,
)


@pytest.fixture
def ordering():
    return ClusterOrdering(
        order=np.array([2, 0, 1]),
        reachability=np.array([np.inf, 0.5, 0.25]),
        core_distances=np.array([0.1, 0.2, 0.15]),
    )


class TestReachabilityExport:
    def test_roundtrip(self, ordering, tmp_path):
        path = tmp_path / "reach.csv"
        export_reachability_csv(ordering, path, names=["a", "b", "c"])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["position", "object_id", "name", "reachability", "core_distance"]
        assert rows[1][1] == "2" and rows[1][2] == "c"
        assert rows[1][3] == "inf"
        assert float(rows[2][3]) == 0.5

    def test_without_names(self, ordering, tmp_path):
        path = tmp_path / "reach.csv"
        export_reachability_csv(ordering, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows[0]) == 4

    def test_name_count_checked(self, ordering, tmp_path):
        with pytest.raises(StorageError):
            export_reachability_csv(ordering, tmp_path / "x.csv", names=["only-one"])


class TestMatrixExport:
    def test_roundtrip(self, tmp_path, rng):
        matrix = rng.random(size=(4, 4))
        matrix = (matrix + matrix.T) / 2
        path = tmp_path / "dist.csv"
        export_distance_matrix_csv(matrix, path)
        loaded = np.loadtxt(path, delimiter=",")
        assert np.allclose(loaded, matrix, atol=1e-8)

    def test_with_names(self, tmp_path, rng):
        matrix = rng.random(size=(2, 2))
        path = tmp_path / "dist.csv"
        export_distance_matrix_csv(matrix, path, names=["x", "y"])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["", "x", "y"]
        assert rows[1][0] == "x"

    def test_non_square_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            export_distance_matrix_csv(np.zeros((2, 3)), tmp_path / "x.csv")


class TestTableExport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "table.csv"
        export_table_csv(["k", "rate"], [[3, 0.682], [5, 0.951]], path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["k", "rate"], ["3", "0.682"], ["5", "0.951"]]

    def test_ragged_rows_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            export_table_csv(["a", "b"], [[1]], tmp_path / "x.csv")

"""Tests for the VoxelGrid data type."""

import numpy as np
import pytest

from repro.exceptions import VoxelizationError
from repro.geometry.transform import reflection_matrix, rotation_matrix, symmetry_matrices
from repro.voxel.grid import VoxelGrid


class TestBasics:
    def test_empty_and_full(self):
        assert VoxelGrid.empty(5).count == 0
        assert VoxelGrid.full(5).count == 125

    def test_non_cubic_rejected(self):
        with pytest.raises(VoxelizationError):
            VoxelGrid(np.zeros((3, 4, 3), dtype=bool))

    def test_bad_voxel_size_rejected(self):
        with pytest.raises(VoxelizationError):
            VoxelGrid(np.zeros((3, 3, 3), dtype=bool), voxel_size=0.0)

    def test_indices_roundtrip(self):
        grid = VoxelGrid.empty(6)
        grid.occupancy[1, 2, 3] = True
        grid.occupancy[4, 4, 4] = True
        assert sorted(map(tuple, grid.indices())) == [(1, 2, 3), (4, 4, 4)]

    def test_centers_in_world_units(self):
        grid = VoxelGrid.empty(4)
        grid.occupancy[0, 0, 0] = True
        grid = VoxelGrid(grid.occupancy, origin=np.array([10.0, 0.0, 0.0]), voxel_size=2.0)
        assert np.allclose(grid.centers()[0], [11.0, 1.0, 1.0])

    def test_volume(self):
        grid = VoxelGrid.full(3)
        grid = VoxelGrid(grid.occupancy, voxel_size=0.5)
        assert grid.volume() == pytest.approx(27 * 0.125)

    def test_bounding_box(self, lshape_grid):
        lower, upper = lshape_grid.bounding_box()
        assert np.all(lower >= 0) and np.all(upper < lshape_grid.resolution)
        assert np.all(lower <= upper)

    def test_empty_grid_has_no_bbox(self):
        with pytest.raises(VoxelizationError):
            VoxelGrid.empty(4).bounding_box()

    def test_equality(self, lshape_grid):
        assert lshape_grid == lshape_grid.copy()
        other = lshape_grid.copy()
        other.occupancy[0, 0, 0] = ~other.occupancy[0, 0, 0]
        assert lshape_grid != other


class TestSurfaceInterior:
    def test_partition_property(self, tire_grid):
        """Surface and interior partition the object voxels (Section 3.3)."""
        surface = tire_grid.surface()
        interior = tire_grid.interior()
        assert not (surface & interior).any()
        assert np.array_equal(surface | interior, tire_grid.occupancy)

    def test_sphere_has_interior(self, sphere_grid):
        assert sphere_grid.interior().sum() > 0
        assert sphere_grid.surface().sum() > 0

    def test_single_voxel_is_all_surface(self):
        grid = VoxelGrid.empty(5)
        grid.occupancy[2, 2, 2] = True
        assert grid.surface().sum() == 1
        assert grid.interior().sum() == 0


class TestTransform:
    def test_rotation_preserves_count(self, lshape_grid):
        for mat in symmetry_matrices(include_reflections=True):
            assert lshape_grid.transformed(mat).count == lshape_grid.count

    def test_identity_is_noop(self, lshape_grid):
        assert np.array_equal(
            lshape_grid.transformed(np.eye(3)).occupancy, lshape_grid.occupancy
        )

    def test_double_reflection_is_identity(self, lshape_grid):
        mirror = reflection_matrix("x")
        twice = lshape_grid.transformed(mirror).transformed(mirror)
        assert np.array_equal(twice.occupancy, lshape_grid.occupancy)

    def test_four_quarter_turns_are_identity(self, lshape_grid):
        quarter = np.rint(rotation_matrix("z", np.pi / 2))
        grid = lshape_grid
        for _ in range(4):
            grid = grid.transformed(quarter)
        assert np.array_equal(grid.occupancy, lshape_grid.occupancy)

    def test_rotation_maps_indices_through_matrix(self):
        """Voxel indices move exactly as the matrix maps their centered
        coordinates."""
        resolution = 6
        grid = VoxelGrid.empty(resolution)
        grid.occupancy[0, 1, 2] = True
        grid.occupancy[3, 0, 5] = True
        mat = np.rint(rotation_matrix("z", np.pi / 2)).astype(int)
        moved = grid.transformed(mat)
        expected = set()
        for idx in grid.indices():
            centered = 2 * idx - (resolution - 1)
            new_idx = (mat @ centered + (resolution - 1)) // 2
            expected.add(tuple(new_idx))
        assert {tuple(i) for i in moved.indices()} == expected

    def test_non_signed_permutation_rejected(self, lshape_grid):
        with pytest.raises(VoxelizationError):
            lshape_grid.transformed(np.full((3, 3), 0.5))

    def test_all_symmetries_counts(self, lshape_grid):
        assert len(lshape_grid.all_symmetries(include_reflections=False)) == 24
        assert len(lshape_grid.all_symmetries(include_reflections=True)) == 48

    def test_chiral_object_has_48_distinct_variants(self):
        """A fully chiral object (no rotational or mirror symmetry)
        produces 48 distinct grids. The L-shape fixture is mirror-
        symmetric in y, so it only yields 24 — a chiral tri-axis blob is
        needed here."""
        from repro.geometry.sdf import Box
        from repro.voxel.voxelize import voxelize_solid

        chiral = (
            Box(size=(2.0, 0.6, 0.5))
            | Box(center=(0.7, 0.5, 0.0), size=(0.6, 0.8, 0.4))
            | Box(center=(-0.6, -0.1, 0.6), size=(0.5, 0.4, 0.9))
        )
        grid = voxelize_solid(chiral, resolution=12)
        variants = {v.occupancy.tobytes() for v in grid.all_symmetries(True)}
        assert len(variants) == 48

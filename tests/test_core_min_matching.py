"""Tests for the minimal matching distance (Definition 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.min_matching import (
    as_set_array,
    euclidean_cross,
    euclidean_cross_reference,
    manhattan_cross,
    min_matching_distance,
    min_matching_match,
    resolve_distance,
    squared_euclidean_cross,
    squared_euclidean_cross_reference,
    vector_set_distance,
)
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError

finite_sets = st.integers(1, 5).flatmap(
    lambda m: arrays(
        float, (m, 3), elements=st.floats(-50, 50, allow_nan=False, width=32)
    )
)


class TestCrossDistances:
    def test_euclidean_cross_matches_manual(self, rng):
        x, y = rng.normal(size=(4, 3)), rng.normal(size=(6, 3))
        cross = euclidean_cross(x, y)
        assert cross.shape == (4, 6)
        assert cross[2, 3] == pytest.approx(np.linalg.norm(x[2] - y[3]))

    def test_squared_is_square(self, rng):
        x, y = rng.normal(size=(3, 2)), rng.normal(size=(3, 2))
        assert np.allclose(squared_euclidean_cross(x, y), euclidean_cross(x, y) ** 2)

    def test_manhattan(self, rng):
        x, y = rng.normal(size=(2, 4)), rng.normal(size=(3, 4))
        assert manhattan_cross(x, y)[1, 2] == pytest.approx(np.abs(x[1] - y[2]).sum())

    def test_resolver(self):
        assert resolve_distance("euclidean") is euclidean_cross
        with pytest.raises(DistanceError):
            resolve_distance("chebyshov")

    def test_gram_form_matches_broadcast_reference(self, rng):
        """The Gram-identity kernel agrees with the pre-optimization
        broadcast form, kept as an oracle."""
        for _ in range(10):
            x = rng.normal(size=(rng.integers(1, 9), 5)) * 10
            y = rng.normal(size=(rng.integers(1, 9), 5)) * 10
            assert np.allclose(
                squared_euclidean_cross(x, y),
                squared_euclidean_cross_reference(x, y),
                atol=1e-9,
            )
            assert np.allclose(
                euclidean_cross(x, y), euclidean_cross_reference(x, y), atol=1e-9
            )

    def test_gram_form_never_negative(self, rng):
        """Cancellation in ||x||^2 + ||y||^2 - 2 x.y can go below zero for
        near-identical rows; the clip must absorb it before the sqrt."""
        x = rng.normal(size=(50, 6))
        y = x + 1e-9
        sq = squared_euclidean_cross(x, y)
        assert np.all(sq >= 0.0)
        assert not np.any(np.isnan(euclidean_cross(x, y)))

    def test_identical_rows_are_exactly_zero(self, rng):
        """einsum's fixed summation order makes self-distances exact zeros
        (the engine's self-query guarantee depends on this)."""
        x = rng.normal(size=(20, 6)) * 100
        assert np.all(np.diag(squared_euclidean_cross(x, x)) == 0.0)
        assert np.all(np.diag(euclidean_cross(x, x)) == 0.0)

    @given(
        st.integers(1, 6).flatmap(
            lambda m: arrays(
                float, (m, 3), elements=st.floats(-100, 100, allow_nan=False, width=32)
            )
        ),
        st.integers(1, 6).flatmap(
            lambda n: arrays(
                float, (n, 3), elements=st.floats(-100, 100, allow_nan=False, width=32)
            )
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_gram_form_property(self, x, y):
        assert np.allclose(
            squared_euclidean_cross(x, y),
            squared_euclidean_cross_reference(x, y),
            rtol=1e-9,
            atol=1e-7,
        )


class TestMinMatching:
    def test_identical_sets_have_zero_distance(self, rng):
        x = rng.normal(size=(5, 6))
        assert min_matching_distance(x, x) == pytest.approx(0.0)

    def test_permutation_of_rows_has_zero_distance(self, rng):
        x = rng.normal(size=(6, 4))
        shuffled = x[rng.permutation(6)]
        assert min_matching_distance(x, shuffled) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        x, y = rng.normal(size=(4, 3)), rng.normal(size=(7, 3))
        assert min_matching_distance(x, y) == pytest.approx(min_matching_distance(y, x))

    def test_brute_force_equivalence_small(self, rng):
        """Exhaustively verify Definition 6 on small sets."""
        from itertools import permutations

        for _ in range(20):
            m, n = rng.integers(1, 5, size=2)
            if m < n:
                m, n = n, m
            x, y = rng.normal(size=(m, 3)), rng.normal(size=(n, 3))
            best = np.inf
            for order in permutations(range(m)):
                matched = sum(
                    np.linalg.norm(x[order[i]] - y[i]) for i in range(n)
                )
                unmatched = sum(np.linalg.norm(x[order[i]]) for i in range(n, m))
                best = min(best, matched + unmatched)
            assert min_matching_distance(x, y) == pytest.approx(best)

    def test_size_mismatch_pays_weight(self):
        x = np.array([[3.0, 4.0]])  # norm 5
        y = np.array([[3.0, 4.0], [6.0, 8.0]])  # second element norm 10
        # Optimal: match identical pair, pay ||(6,8)|| = 10.
        assert min_matching_distance(x, y) == pytest.approx(10.0)

    def test_custom_weight_function(self):
        x = np.array([[1.0, 0.0]])
        y = np.array([[1.0, 0.0], [9.0, 0.0]])
        flat = min_matching_distance(x, y, weight=lambda arr: np.full(len(arr), 2.5))
        assert flat == pytest.approx(2.5)

    def test_match_result_reports_pairs(self, rng):
        x = rng.normal(size=(3, 2))
        result = min_matching_match(x, x)
        assert result.is_identity
        assert len(result.pairs) == 3
        assert len(result.unmatched) == 0

    def test_match_result_non_identity(self):
        x = np.array([[0.0, 0.0], [10.0, 0.0]])
        y = np.array([[10.0, 0.0], [0.0, 0.0]])  # swapped order
        result = min_matching_match(x, y)
        assert not result.is_identity
        assert result.distance == pytest.approx(0.0)

    def test_unmatched_indices_point_into_larger_set(self, rng):
        x = rng.normal(size=(5, 3))
        y = rng.normal(size=(2, 3))
        result = min_matching_match(x, y)
        assert len(result.unmatched) == 3
        assert set(result.unmatched) <= set(range(5))

    def test_vector_set_wrapper(self, rng):
        x = VectorSet(rng.normal(size=(3, 6)), capacity=7)
        y = VectorSet(rng.normal(size=(5, 6)), capacity=7)
        assert vector_set_distance(x, y) == pytest.approx(
            min_matching_distance(x.vectors, y.vectors)
        )

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(DistanceError):
            min_matching_distance(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))

    def test_empty_set_rejected(self):
        with pytest.raises(DistanceError):
            min_matching_distance(np.empty((0, 3)), np.zeros((1, 3)))

    def test_backends_agree(self, rng):
        for _ in range(20):
            x = rng.normal(size=(rng.integers(1, 8), 5))
            y = rng.normal(size=(rng.integers(1, 8), 5))
            assert min_matching_distance(x, y, backend="own") == pytest.approx(
                min_matching_distance(x, y, backend="scipy")
            )

    def test_pairs_never_empty_via_public_api(self, rng):
        """The smaller set is always fully matched, so `pairs` has at
        least one entry — the empty-matching guard in `is_identity` is
        defensive here (the batched kernel's omega-padded formulation
        *can* produce all-virtual matchings; see test_core_batch)."""
        for _ in range(10):
            x = rng.normal(size=(rng.integers(1, 6), 3))
            y = rng.normal(size=(rng.integers(1, 6), 3))
            result = min_matching_match(x, y)
            assert len(result.pairs) == min(len(x), len(y))

    def test_identity_flag_requires_identity_pairs(self, rng):
        x = rng.normal(size=(3, 4))
        assert min_matching_match(x, x).is_identity
        swapped = x[[1, 0, 2]]
        assert not min_matching_match(x, swapped).is_identity


class TestAsSetArray:
    def test_accepts_raw_array_and_vector_set(self, rng):
        arr = rng.normal(size=(3, 4))
        assert np.array_equal(as_set_array(arr), arr)
        assert np.array_equal(as_set_array(VectorSet(arr, capacity=5)), arr)

    def test_rejects_empty_and_misshaped(self):
        with pytest.raises(DistanceError):
            as_set_array(np.empty((0, 3)))
        with pytest.raises(DistanceError):
            as_set_array(np.zeros(3))

    def test_rejects_corrupted_vector_set(self):
        """Frozen dataclasses can be bypassed; the validation must hold on
        the VectorSet branch too (it used to be skipped there)."""
        vs = VectorSet(np.zeros((1, 3)), capacity=2)
        object.__setattr__(vs, "vectors", np.empty((0, 3)))
        with pytest.raises(DistanceError):
            as_set_array(vs)
        object.__setattr__(vs, "vectors", np.zeros(5))
        with pytest.raises(DistanceError):
            as_set_array(vs)


class TestMetricAxioms:
    """Lemma 1: with Euclidean distance and norm weights the minimal
    matching distance is a metric."""

    @given(finite_sets, finite_sets)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_property(self, x, y):
        assert min_matching_distance(x, y) == pytest.approx(
            min_matching_distance(y, x), abs=1e-6
        )

    @given(finite_sets, finite_sets, finite_sets)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality_property(self, x, y, z):
        dxy = min_matching_distance(x, y)
        dxz = min_matching_distance(x, z)
        dzy = min_matching_distance(z, y)
        assert dxy <= dxz + dzy + 1e-6

    @given(finite_sets)
    @settings(max_examples=30, deadline=None)
    def test_identity_property(self, x):
        assert min_matching_distance(x, x) == pytest.approx(0.0, abs=1e-9)

    @given(finite_sets, finite_sets)
    @settings(max_examples=60, deadline=None)
    def test_non_negativity_property(self, x, y):
        assert min_matching_distance(x, y) >= 0.0

"""Tests for the end-to-end preparation pipeline."""

import numpy as np
import pytest

from repro.datasets.parts import make_part
from repro.exceptions import ReproError
from repro.features.vector_set_model import VectorSetModel
from repro.core.min_matching import min_matching_distance
from repro.geometry.mesh import box_mesh
from repro.geometry.sdf import Box, Sphere
from repro.pipeline import Pipeline, pairwise_distance_matrix


class TestPipeline:
    def test_process_solid_returns_centered_grid(self):
        pipeline = Pipeline(resolution=15)
        grid, pose = pipeline.process_solid(Box(size=(2.0, 1.0, 0.5)))
        lower, upper = grid.bounding_box()
        slack_low = lower
        slack_high = 14 - upper
        assert np.all(np.abs(slack_low - slack_high) <= 1)
        assert pose.scale_factors[0] > pose.scale_factors[2]

    def test_placement_invariance(self, rng):
        """The pipeline output is identical for any rigid 90-degree
        placement of the same solid — the end-to-end statement of
        Section 3.2's invariances."""
        pipeline = Pipeline(resolution=15)
        part = make_part("door", rng, place=False)
        reference, _ = pipeline.process_solid(part.solid)
        from repro.datasets.parts import random_placement

        for _ in range(4):
            placed = part.solid.transformed(random_placement(rng, mirror=True))
            grid, _ = pipeline.process_solid(placed)
            overlap = (grid.occupancy & reference.occupancy).sum()
            union = (grid.occupancy | reference.occupancy).sum()
            assert overlap / union > 0.55  # resampling noise only

    def test_distances_shrink_under_invariance(self, rng):
        """Matching distance between a part and its rotated copy is
        near zero after the pipeline."""
        pipeline = Pipeline(resolution=15)
        model = VectorSetModel(k=7)
        part = make_part("bracket", rng, place=False)
        from repro.datasets.parts import random_placement

        grid_a, _ = pipeline.process_solid(part.solid)
        grid_b, _ = pipeline.process_solid(
            part.solid.transformed(random_placement(rng))
        )
        same = min_matching_distance(model.extract(grid_a), model.extract(grid_b))
        other = make_part("wing", rng, place=False)
        grid_c, _ = pipeline.process_solid(other.solid)
        different = min_matching_distance(model.extract(grid_a), model.extract(grid_c))
        assert same < different

    def test_process_mesh(self):
        pipeline = Pipeline(resolution=12)
        grid, pose = pipeline.process_mesh(box_mesh(size=(1.0, 2.0, 0.5)))
        assert grid.count > 0

    def test_process_part_carries_metadata(self, rng):
        pipeline = Pipeline(resolution=12)
        part = make_part("tire", rng, name="tire-x", class_id=5)
        processed = pipeline.process_part(part)
        assert processed.name == "tire-x"
        assert processed.class_id == 5
        assert processed.family == "tire"

    def test_canonical_pose_optional(self, rng):
        pipeline_raw = Pipeline(resolution=12, canonical_pose=False)
        part = make_part("door", rng)
        grid, _ = pipeline_raw.process_solid(part.solid)
        assert grid.count > 0

    def test_tiny_resolution_rejected(self):
        with pytest.raises(ReproError):
            Pipeline(resolution=1)

    def test_degenerate_solid_rejected(self):
        pipeline = Pipeline(resolution=8)
        # A sphere fully outside its reported bounds cannot happen, but a
        # zero-measure intersection can: intersection of disjoint boxes.
        degenerate = Box(center=(0, 0, 0)) & Box(center=(10, 10, 10))
        with pytest.raises(ReproError):
            pipeline.process_solid(degenerate)


class TestPairwiseMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        objects = [rng.normal(size=3) for _ in range(6)]
        matrix = pairwise_distance_matrix(
            objects, lambda a, b: float(np.linalg.norm(a - b))
        )
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_calls_distance_once_per_pair(self, rng):
        calls = []

        def spy(a, b):
            calls.append(1)
            return 0.0

        pairwise_distance_matrix(list(range(5)), spy)
        assert len(calls) == 10  # 5 choose 2


class TestParallelIngestion:
    """``n_jobs`` parity: parallel ingestion must be indistinguishable
    from serial — same objects, same order, same per-object records —
    because workers run the identical per-object path and results are
    merged in submission order."""

    @pytest.fixture
    def parts(self, rng):
        from repro.datasets.parts import make_part

        return [make_part(family, rng) for family in ("door", "bracket", "tire")]

    def test_process_parts_parallel_matches_serial(self, parts):
        pipeline = Pipeline(resolution=10)
        serial = pipeline.process_parts(parts)
        parallel = pipeline.process_parts(parts, n_jobs=2)
        assert [obj.name for obj in parallel.objects] == [
            obj.name for obj in serial.objects
        ]
        assert [(rec.name, rec.status) for rec in parallel.records] == [
            (rec.name, rec.status) for rec in serial.records
        ]
        for got, expected in zip(parallel.objects, serial.objects):
            assert np.array_equal(got.grid.occupancy, expected.grid.occupancy)
            assert got.class_id == expected.class_id

    def test_parallel_skip_isolates_failing_part(self, parts):
        # The degenerate solid fails inside the worker process (no
        # monkeypatching — that would not cross the fork boundary).
        from repro.datasets.parts import CADPart

        bad = CADPart(
            name="degenerate",
            family="noise",
            class_id=-1,
            solid=Box(center=(0, 0, 0)) & Box(center=(10, 10, 10)),
        )
        mixed = [parts[0], bad, parts[1]]
        pipeline = Pipeline(resolution=10)
        report = pipeline.process_parts(mixed, on_error="skip", n_jobs=2)
        assert [obj.name for obj in report.objects] == [
            parts[0].name, parts[1].name
        ]
        assert not report.all_ok()
        failed = [rec for rec in report.records if rec.status == "failed"]
        assert len(failed) == 1 and failed[0].name == "degenerate"

    def test_parallel_raise_propagates_failure(self, parts):
        from repro.datasets.parts import CADPart

        bad = CADPart(
            name="degenerate",
            family="noise",
            class_id=-1,
            solid=Box(center=(0, 0, 0)) & Box(center=(10, 10, 10)),
        )
        pipeline = Pipeline(resolution=10)
        with pytest.raises(ReproError):
            pipeline.process_parts([parts[0], bad], on_error="raise", n_jobs=2)

    def test_process_mesh_directory_parallel_matches_serial(self, tmp_path):
        from repro.io.stl import write_stl_binary

        for i in range(3):
            write_stl_binary(box_mesh((1.0, 1.0 + i, 0.5)), tmp_path / f"box{i}.stl")
        pipeline = Pipeline(resolution=8)
        serial = pipeline.process_mesh_directory(tmp_path)
        parallel = pipeline.process_mesh_directory(tmp_path, n_jobs=2)
        assert [obj.name for obj in parallel.objects] == [
            obj.name for obj in serial.objects
        ]
        for got, expected in zip(parallel.objects, serial.objects):
            assert np.array_equal(got.grid.occupancy, expected.grid.occupancy)

"""Tests for the from-scratch Kuhn–Munkres implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.core.matching import (
    _SCALAR_CUTOFF,
    _hungarian_own,
    _hungarian_scalar,
    assignment_cost,
    hungarian,
)
from repro.exceptions import DistanceError


def _optimal_cost(matrix: np.ndarray) -> float:
    rows, cols = linear_sum_assignment(matrix)
    return float(matrix[rows, cols].sum())


class TestAgainstScipy:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 20, 40])
    def test_random_matrices(self, n, rng):
        for _ in range(10):
            matrix = rng.normal(size=(n, n)) * rng.uniform(0.1, 100)
            assignment = hungarian(matrix)
            assert sorted(assignment) == list(range(n))  # a permutation
            assert assignment_cost(matrix, assignment) == pytest.approx(
                _optimal_cost(matrix)
            )

    def test_scalar_and_vectorized_agree(self, rng):
        for n in (2, 5, 9, 17):
            matrix = rng.normal(size=(n, n))
            cost_scalar = assignment_cost(matrix, _hungarian_scalar(matrix))
            cost_vector = assignment_cost(matrix, _hungarian_own(matrix))
            assert cost_scalar == pytest.approx(cost_vector)

    def test_scipy_backend(self, rng):
        matrix = rng.normal(size=(6, 6))
        assert assignment_cost(matrix, hungarian(matrix, backend="scipy")) == pytest.approx(
            _optimal_cost(matrix)
        )

    def test_integer_costs_with_many_ties(self, rng):
        matrix = rng.integers(0, 3, size=(10, 10)).astype(float)
        assert assignment_cost(matrix, hungarian(matrix)) == pytest.approx(
            _optimal_cost(matrix)
        )

    def test_large_matrix_uses_vectorized_path(self, rng):
        n = _SCALAR_CUTOFF + 5
        matrix = rng.normal(size=(n, n))
        assert assignment_cost(matrix, hungarian(matrix)) == pytest.approx(
            _optimal_cost(matrix)
        )


class TestEdgeCases:
    def test_identity_is_optimal_on_diagonal_costs(self):
        matrix = np.full((4, 4), 10.0)
        np.fill_diagonal(matrix, 0.0)
        assert list(hungarian(matrix)) == [0, 1, 2, 3]

    def test_anti_diagonal(self):
        matrix = np.full((3, 3), 5.0)
        matrix[0, 2] = matrix[1, 1] = matrix[2, 0] = 0.0
        assert list(hungarian(matrix)) == [2, 1, 0]

    def test_single_element(self):
        assert list(hungarian(np.array([[3.5]]))) == [0]

    def test_empty_matrix(self):
        assert len(hungarian(np.empty((0, 0)))) == 0

    def test_negative_costs_fine(self, rng):
        matrix = rng.normal(size=(7, 7)) - 50
        assert assignment_cost(matrix, hungarian(matrix)) == pytest.approx(
            _optimal_cost(matrix)
        )

    def test_non_square_rejected(self):
        with pytest.raises(DistanceError):
            hungarian(np.zeros((2, 3)))

    def test_non_finite_rejected(self):
        matrix = np.zeros((3, 3))
        matrix[1, 1] = np.inf
        with pytest.raises(DistanceError):
            hungarian(matrix)

    def test_unknown_backend_rejected(self):
        with pytest.raises(DistanceError):
            hungarian(np.zeros((2, 2)), backend="magic")


@given(
    st.integers(1, 9).flatmap(
        lambda n: st.lists(
            st.lists(st.floats(-100, 100), min_size=n, max_size=n),
            min_size=n,
            max_size=n,
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_hungarian_optimality_property(matrix_rows):
    """The returned assignment's cost equals scipy's optimum."""
    matrix = np.asarray(matrix_rows)
    assignment = hungarian(matrix)
    assert sorted(assignment) == list(range(len(matrix)))
    assert assignment_cost(matrix, assignment) == pytest.approx(
        _optimal_cost(matrix), abs=1e-6
    )

"""Tests for the R*-tree, X-tree, M-tree and sequential scan."""

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.exceptions import IndexError_
from repro.index.mtree import MTree
from repro.index.pages import PageManager
from repro.index.rstar import RStarTree
from repro.index.scan import SequentialScan
from repro.index.xtree import XTree
from tests.conftest import random_vector_sets


def brute_knn(points, query, k):
    dists = np.linalg.norm(points - query, axis=1)
    order = np.argsort(dists, kind="stable")[:k]
    return [int(i) for i in order]


@pytest.fixture(params=[RStarTree, XTree], ids=["rstar", "xtree"])
def built_tree(request, rng):
    points = rng.random(size=(500, 4))
    tree = request.param(4)
    for i, point in enumerate(points):
        tree.insert(point, i)
    return tree, points


class TestSpatialTrees:
    def test_structural_invariants(self, built_tree):
        tree, _ = built_tree
        tree.validate()
        assert tree.size == 500

    def test_knn_matches_brute_force(self, built_tree, rng):
        tree, points = built_tree
        for _ in range(10):
            query = rng.random(4)
            ours = [oid for oid, _ in tree.knn(query, 8)]
            assert ours == brute_knn(points, query, 8)

    def test_knn_distances_correct(self, built_tree, rng):
        tree, points = built_tree
        query = rng.random(4)
        for oid, dist in tree.knn(query, 5):
            assert dist == pytest.approx(np.linalg.norm(points[oid] - query))

    def test_range_matches_brute_force(self, built_tree, rng):
        tree, points = built_tree
        query = rng.random(4)
        radius = 0.3
        ours = sorted(tree.range_search(query, radius))
        brute = sorted(
            int(i)
            for i in np.nonzero(np.linalg.norm(points - query, axis=1) <= radius)[0]
        )
        assert ours == brute

    def test_incremental_nearest_is_sorted(self, built_tree, rng):
        tree, _ = built_tree
        query = rng.random(4)
        distances = [d for _, d in zip(range(50), ())]  # placeholder
        ranking = tree.incremental_nearest(query)
        previous = -1.0
        for _, (oid, dist) in zip(range(50), ranking):
            assert dist >= previous
            previous = dist

    def test_incremental_nearest_is_lazy(self, rng):
        pages = PageManager()
        tree = RStarTree(3, page_manager=pages)
        for i, point in enumerate(rng.random(size=(300, 3))):
            tree.insert(point, i)
        pages.reset()
        ranking = tree.incremental_nearest(rng.random(3))
        next(ranking)
        partial = pages.cost.page_accesses
        for _ in zip(range(200), ranking):
            pass
        assert pages.cost.page_accesses > partial  # more reads happened later

    def test_duplicate_points_supported(self, rng):
        tree = RStarTree(3)
        point = np.array([0.5, 0.5, 0.5])
        for i in range(30):
            tree.insert(point, i)
        tree.validate()
        assert len(tree.knn(point, 30)) == 30

    def test_box_entries(self, rng):
        tree = RStarTree(2)
        tree.insert_box(np.array([0.0, 0.0]), np.array([1.0, 1.0]), 1)
        tree.insert_box(np.array([5.0, 5.0]), np.array([6.0, 6.0]), 2)
        assert tree.range_search(np.array([0.5, 0.5]), 0.1) == [1]

    def test_parameter_validation(self):
        with pytest.raises(IndexError_):
            RStarTree(0)
        with pytest.raises(IndexError_):
            RStarTree(3, capacity=2)
        with pytest.raises(IndexError_):
            RStarTree(3, reinsert_fraction=1.0)
        tree = RStarTree(3)
        with pytest.raises(IndexError_):
            tree.insert(np.zeros(2), 0)
        with pytest.raises(IndexError_):
            tree.knn(np.zeros(3), 0)
        with pytest.raises(IndexError_):
            tree.range_search(np.zeros(3), -1.0)

    def test_no_reinsert_variant_still_correct(self, rng):
        points = rng.random(size=(300, 3))
        tree = RStarTree(3, reinsert_fraction=0.0)
        for i, point in enumerate(points):
            tree.insert(point, i)
        tree.validate()
        query = rng.random(3)
        assert [oid for oid, _ in tree.knn(query, 5)] == brute_knn(points, query, 5)


class TestXTreeSupernodes:
    def test_supernodes_emerge_on_clustered_high_dim_data(self, rng):
        """Strongly overlapping high-dimensional clusters force supernodes."""
        pages = PageManager()
        tree = XTree(16, page_manager=pages, max_overlap=0.0)
        centers = rng.random(size=(5, 16))
        points = np.vstack([c + rng.normal(scale=0.3, size=(200, 16)) for c in centers])
        for i, point in enumerate(points):
            tree.insert(point, i)
        tree.validate()
        query = points[0]
        assert [oid for oid, _ in tree.knn(query, 3)] == brute_knn(points, query, 3)

    def test_supernode_pages_cost_more(self, rng):
        pages = PageManager()
        tree = XTree(8, page_manager=pages, max_overlap=0.0, capacity=8)
        for i, point in enumerate(rng.normal(size=(600, 8))):
            tree.insert(point, i)
        if tree.supernodes_created:
            # At least one node spans multiple pages now.
            assert pages.total_bytes() > pages.allocated_pages * 0  # sanity
        tree.validate()

    def test_max_overlap_validation(self):
        with pytest.raises(IndexError_):
            XTree(3, max_overlap=1.5)
        with pytest.raises(IndexError_):
            XTree(3, max_supernode_factor=1)


class TestMTree:
    def test_knn_matches_brute_force_euclidean(self, rng):
        points = rng.random(size=(300, 5))
        metric = lambda a, b: float(np.linalg.norm(a - b))  # noqa: E731
        tree = MTree(metric, capacity=10)
        for i, point in enumerate(points):
            tree.insert(point, i)
        tree.validate()
        query = rng.random(5)
        ours = [oid for oid, _ in tree.knn(query, 7)]
        assert ours == brute_knn(points, query, 7)

    def test_knn_on_vector_sets_with_matching_distance(self, rng):
        sets = random_vector_sets(rng, 150)
        tree = MTree(min_matching_distance, capacity=8)
        for i, vector_set in enumerate(sets):
            tree.insert(vector_set, i)
        query = rng.normal(size=(4, 6))
        ours = [oid for oid, _ in tree.knn(query, 5)]
        brute = sorted(
            range(len(sets)), key=lambda i: (min_matching_distance(query, sets[i]), i)
        )[:5]
        assert ours == brute

    def test_range_search_complete(self, rng):
        points = rng.random(size=(200, 3))
        metric = lambda a, b: float(np.linalg.norm(a - b))  # noqa: E731
        tree = MTree(metric, capacity=8)
        for i, point in enumerate(points):
            tree.insert(point, i)
        query = rng.random(3)
        ours = {oid for oid, _ in tree.range_search(query, 0.4)}
        brute = {
            int(i)
            for i in np.nonzero(np.linalg.norm(points - query, axis=1) <= 0.4)[0]
        }
        assert ours == brute

    def test_pruning_saves_distance_computations(self, rng):
        """On clustered data the triangle inequality must prune whole
        subtrees."""
        metric = lambda a, b: float(np.linalg.norm(a - b))  # noqa: E731
        clusters = [rng.normal(loc=c, scale=0.05, size=(100, 3)) for c in ([0] * 3, [50] * 3, [100] * 3)]
        points = np.vstack(clusters)
        tree = MTree(metric, capacity=8)
        for i, point in enumerate(points):
            tree.insert(point, i)
        tree.distance_computations = 0
        tree.knn(points[0], 3)
        assert tree.distance_computations < len(points)

    def test_capacity_validation(self):
        with pytest.raises(IndexError_):
            MTree(lambda a, b: 0.0, capacity=2)


class TestSequentialScan:
    def test_matches_tree_results(self, rng):
        points = rng.random(size=(200, 4))
        scan = SequentialScan(4)
        tree = RStarTree(4)
        for i, point in enumerate(points):
            scan.insert(point, i)
            tree.insert(point, i)
        query = rng.random(4)
        assert [o for o, _ in scan.knn(query, 6)] == [o for o, _ in tree.knn(query, 6)]
        assert sorted(scan.range_search(query, 0.5)) == sorted(
            tree.range_search(query, 0.5)
        )

    def test_charges_full_read(self, rng):
        pages = PageManager(page_size=4096)
        scan = SequentialScan(4, page_manager=pages)
        for i, point in enumerate(rng.random(size=(100, 4))):
            scan.insert(point, i)
        scan.knn(rng.random(4), 3)
        assert pages.cost.bytes_read == 100 * 4 * 8

    def test_validation(self):
        scan = SequentialScan(3)
        with pytest.raises(IndexError_):
            scan.insert(np.zeros(2), 0)
        with pytest.raises(IndexError_):
            scan.knn(np.zeros(3), 0)

"""Tests for filter-and-refine query processing."""

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.core.queries import FilterRefineEngine, QueryMatch
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError, QueryError
from tests.conftest import random_vector_sets


@pytest.fixture
def engine(rng):
    sets = random_vector_sets(rng, 120, dim=6, max_size=7)
    return FilterRefineEngine(sets, capacity=7), sets


class TestKnn:
    def test_filter_equals_sequential(self, engine, rng):
        eng, sets = engine
        for _ in range(5):
            query = rng.normal(size=(rng.integers(1, 8), 6))
            filtered, _ = eng.knn_query(query, 7)
            sequential, _ = eng.knn_sequential(query, 7)
            assert [m.object_id for m in filtered] == [m.object_id for m in sequential]
            assert [m.distance for m in filtered] == pytest.approx(
                [m.distance for m in sequential]
            )

    def test_knn_distances_sorted(self, engine, rng):
        eng, _ = engine
        results, _ = eng.knn_query(rng.normal(size=(3, 6)), 10)
        distances = [m.distance for m in results]
        assert distances == sorted(distances)

    def test_self_query_returns_self_first(self, engine):
        eng, sets = engine
        results, _ = eng.knn_query(sets[42], 1)
        assert results[0].object_id == 42
        assert results[0].distance == pytest.approx(0.0)

    def test_pruning_happens(self, rng):
        """Clustered data must let the centroid filter skip refinements."""
        # Two well-separated clusters of sets.
        cluster_a = [rng.normal(size=(3, 6)) * 0.1 for _ in range(50)]
        cluster_b = [rng.normal(size=(3, 6)) * 0.1 + 100.0 for _ in range(50)]
        eng = FilterRefineEngine(cluster_a + cluster_b, capacity=7)
        _, stats = eng.knn_query(cluster_a[0], 5)
        assert stats.exact_computations < 100
        assert stats.pruned > 0

    def test_k_larger_than_database(self, engine, rng):
        eng, sets = engine
        results, _ = eng.knn_query(rng.normal(size=(2, 6)), len(sets) + 50)
        assert len(results) == len(sets)

    def test_invalid_k_rejected(self, engine, rng):
        eng, _ = engine
        with pytest.raises(QueryError):
            eng.knn_query(rng.normal(size=(2, 6)), 0)


class TestRange:
    def test_range_results_complete_and_correct(self, engine, rng):
        eng, sets = engine
        query = rng.normal(size=(4, 6))
        epsilon = 4.0
        results, _ = eng.range_query(query, epsilon)
        brute = {
            i
            for i, s in enumerate(sets)
            if min_matching_distance(query, s) <= epsilon
        }
        assert {m.object_id for m in results} == brute

    def test_zero_epsilon_finds_exact_copy(self, engine):
        eng, sets = engine
        results, _ = eng.range_query(sets[7], 1e-9)
        assert 7 in {m.object_id for m in results}

    def test_negative_epsilon_rejected(self, engine, rng):
        eng, _ = engine
        with pytest.raises(QueryError):
            eng.range_query(rng.normal(size=(2, 6)), -1.0)


class TestConstruction:
    def test_empty_database_rejected(self):
        with pytest.raises(QueryError):
            FilterRefineEngine([], capacity=7)

    def test_oversized_set_rejected(self, rng):
        with pytest.raises(QueryError):
            FilterRefineEngine([rng.normal(size=(9, 6))], capacity=7)

    def test_inconsistent_dimensions_rejected(self, rng):
        with pytest.raises(QueryError):
            FilterRefineEngine(
                [rng.normal(size=(2, 6)), rng.normal(size=(2, 5))], capacity=7
            )

    def test_vector_set_inputs(self, rng):
        sets = [VectorSet(rng.normal(size=(3, 6)), capacity=7) for _ in range(10)]
        eng = FilterRefineEngine(sets, capacity=7)
        results, _ = eng.knn_query(sets[0], 3)
        assert results[0].object_id == 0

    def test_custom_ranker_is_used(self, engine, rng):
        """A ranker that yields in ascending centroid order must give the
        same results as the built-in scan."""
        eng, sets = engine
        query = rng.normal(size=(3, 6))

        def ranker(center):
            dists = np.linalg.norm(eng.centroids - center, axis=1)
            for i in np.argsort(dists):
                yield int(i), float(dists[i])

        with_ranker, _ = eng.knn_query(query, 5, centroid_ranker=ranker)
        without, _ = eng.knn_query(query, 5)
        assert [m.object_id for m in with_ranker] == [m.object_id for m in without]

"""Tests for filter-and-refine query processing."""

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.core.queries import FilterRefineEngine, QueryMatch
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError, QueryError
from tests.conftest import random_vector_sets


@pytest.fixture
def engine(rng):
    sets = random_vector_sets(rng, 120, dim=6, max_size=7)
    return FilterRefineEngine(sets, capacity=7), sets


class TestKnn:
    def test_filter_equals_sequential(self, engine, rng):
        eng, sets = engine
        for _ in range(5):
            query = rng.normal(size=(rng.integers(1, 8), 6))
            filtered, _ = eng.knn_query(query, 7)
            sequential, _ = eng.knn_sequential(query, 7)
            assert [m.object_id for m in filtered] == [m.object_id for m in sequential]
            assert [m.distance for m in filtered] == pytest.approx(
                [m.distance for m in sequential]
            )

    def test_knn_distances_sorted(self, engine, rng):
        eng, _ = engine
        results, _ = eng.knn_query(rng.normal(size=(3, 6)), 10)
        distances = [m.distance for m in results]
        assert distances == sorted(distances)

    def test_self_query_returns_self_first(self, engine):
        eng, sets = engine
        results, _ = eng.knn_query(sets[42], 1)
        assert results[0].object_id == 42
        assert results[0].distance == pytest.approx(0.0)

    def test_pruning_happens(self, rng):
        """Clustered data must let the centroid filter skip refinements."""
        # Two well-separated clusters of sets.
        cluster_a = [rng.normal(size=(3, 6)) * 0.1 for _ in range(50)]
        cluster_b = [rng.normal(size=(3, 6)) * 0.1 + 100.0 for _ in range(50)]
        eng = FilterRefineEngine(cluster_a + cluster_b, capacity=7)
        _, stats = eng.knn_query(cluster_a[0], 5)
        assert stats.exact_computations < 100
        assert stats.pruned > 0

    def test_k_larger_than_database(self, engine, rng):
        eng, sets = engine
        results, _ = eng.knn_query(rng.normal(size=(2, 6)), len(sets) + 50)
        assert len(results) == len(sets)

    def test_invalid_k_rejected(self, engine, rng):
        eng, _ = engine
        with pytest.raises(QueryError):
            eng.knn_query(rng.normal(size=(2, 6)), 0)


class TestRange:
    def test_range_results_complete_and_correct(self, engine, rng):
        eng, sets = engine
        query = rng.normal(size=(4, 6))
        epsilon = 4.0
        results, _ = eng.range_query(query, epsilon)
        brute = {
            i
            for i, s in enumerate(sets)
            if min_matching_distance(query, s) <= epsilon
        }
        assert {m.object_id for m in results} == brute

    def test_zero_epsilon_finds_exact_copy(self, engine):
        eng, sets = engine
        results, _ = eng.range_query(sets[7], 1e-9)
        assert 7 in {m.object_id for m in results}

    def test_negative_epsilon_rejected(self, engine, rng):
        eng, _ = engine
        with pytest.raises(QueryError):
            eng.range_query(rng.normal(size=(2, 6)), -1.0)


class TestBlockedRefinement:
    """The blocked batch refinement must be invisible in the results."""

    def test_block_sizes_agree(self, engine, rng):
        eng, sets = engine
        for block_size in (1, 3, 16, 64, 1000):
            other = FilterRefineEngine(sets, capacity=7, block_size=block_size)
            for qi in (0, 42):
                expected, _ = eng.knn_query(sets[qi], 6)
                got, _ = other.knn_query(sets[qi], 6)
                assert [m.object_id for m in got] == [m.object_id for m in expected]
                assert [m.distance for m in got] == [m.distance for m in expected]

    def test_block_size_one_is_strictly_sequential(self, engine, rng):
        eng, sets = engine
        sequential = FilterRefineEngine(sets, capacity=7, block_size=1)
        for _ in range(5):
            query = rng.normal(size=(rng.integers(1, 8), 6))
            _, stats = sequential.knn_query(query, 5)
            assert stats.extra_refinements == 0

    def test_extra_refinements_bounded_by_block(self, engine, rng):
        eng, sets = engine
        sequential = FilterRefineEngine(sets, capacity=7, block_size=1)
        for _ in range(5):
            query = rng.normal(size=(rng.integers(1, 8), 6))
            _, blocked_stats = eng.knn_query(query, 5)
            _, seq_stats = sequential.knn_query(query, 5)
            assert blocked_stats.extra_refinements <= eng.block_size - 1
            # Exactly the overshoot beyond the sequential optimum.
            assert (
                blocked_stats.exact_computations - blocked_stats.extra_refinements
                == seq_stats.exact_computations
            )

    def test_matches_per_pair_refinement(self, engine, rng):
        """The batch kernel and a per-pair exact_distance engine agree."""
        eng, sets = engine
        per_pair = FilterRefineEngine(
            sets, capacity=7, exact_distance=min_matching_distance
        )
        query = rng.normal(size=(4, 6))
        batched, _ = eng.knn_query(query, 8)
        looped, _ = per_pair.knn_query(query, 8)
        assert [m.object_id for m in batched] == [m.object_id for m in looped]
        assert [m.distance for m in batched] == pytest.approx(
            [m.distance for m in looped], abs=1e-9
        )
        batched_range, _ = eng.range_query(query, 4.0)
        looped_range, _ = per_pair.range_query(query, 4.0)
        assert [m.object_id for m in batched_range] == [
            m.object_id for m in looped_range
        ]

    def test_scipy_backend_agrees(self, engine, rng):
        eng, sets = engine
        oracle = FilterRefineEngine(sets, capacity=7, backend="scipy")
        query = rng.normal(size=(3, 6))
        expected, _ = eng.knn_query(query, 5)
        got, _ = oracle.knn_query(query, 5)
        assert [m.object_id for m in got] == [m.object_id for m in expected]
        assert [m.distance for m in got] == pytest.approx(
            [m.distance for m in expected], abs=1e-9
        )

    def test_invalid_block_size_rejected(self, rng):
        with pytest.raises(QueryError):
            FilterRefineEngine([rng.normal(size=(2, 6))], capacity=7, block_size=0)


class TestKnnQueryMany:
    def test_identical_to_looped_queries(self, engine, rng):
        eng, sets = engine
        queries = [rng.normal(size=(rng.integers(1, 8), 6)) for _ in range(6)]
        queries.append(sets[42])
        many = eng.knn_query_many(queries, 5)
        assert len(many) == len(queries)
        for query, (results, stats) in zip(queries, many):
            expected, expected_stats = eng.knn_query(query, 5)
            assert [m.object_id for m in results] == [m.object_id for m in expected]
            assert [m.distance for m in results] == [m.distance for m in expected]
            assert stats.candidates_ranked == expected_stats.candidates_ranked
            assert stats.exact_computations == expected_stats.exact_computations
            assert stats.extra_refinements == expected_stats.extra_refinements
            assert stats.pruned == expected_stats.pruned

    def test_empty_query_list(self, engine):
        eng, _ = engine
        assert eng.knn_query_many([], 3) == []

    def test_custom_exact_distance_fallback(self, rng):
        sets = random_vector_sets(rng, 30, dim=6, max_size=7)
        eng = FilterRefineEngine(
            sets, capacity=7, exact_distance=min_matching_distance
        )
        queries = [rng.normal(size=(3, 6)) for _ in range(3)]
        many = eng.knn_query_many(queries, 4)
        for query, (results, _) in zip(queries, many):
            expected, _ = eng.knn_query(query, 4)
            assert [m.object_id for m in results] == [m.object_id for m in expected]

    def test_invalid_k_rejected(self, engine):
        eng, sets = engine
        with pytest.raises(QueryError):
            eng.knn_query_many([sets[0]], 0)

    def test_batch_queries_alias(self, engine):
        eng, _ = engine
        assert eng.batch_queries == eng.knn_query_many


class TestConstruction:
    def test_empty_database_rejected(self):
        with pytest.raises(QueryError):
            FilterRefineEngine([], capacity=7)

    def test_oversized_set_rejected(self, rng):
        with pytest.raises(QueryError):
            FilterRefineEngine([rng.normal(size=(9, 6))], capacity=7)

    def test_inconsistent_dimensions_rejected(self, rng):
        with pytest.raises(QueryError):
            FilterRefineEngine(
                [rng.normal(size=(2, 6)), rng.normal(size=(2, 5))], capacity=7
            )

    def test_vector_set_inputs(self, rng):
        sets = [VectorSet(rng.normal(size=(3, 6)), capacity=7) for _ in range(10)]
        eng = FilterRefineEngine(sets, capacity=7)
        results, _ = eng.knn_query(sets[0], 3)
        assert results[0].object_id == 0

    def test_custom_ranker_is_used(self, engine, rng):
        """A ranker that yields in ascending centroid order must give the
        same results as the built-in scan."""
        eng, sets = engine
        query = rng.normal(size=(3, 6))

        def ranker(center):
            dists = np.linalg.norm(eng.centroids - center, axis=1)
            for i in np.argsort(dists):
                yield int(i), float(dists[i])

        with_ranker, _ = eng.knn_query(query, 5, centroid_ranker=ranker)
        without, _ = eng.knn_query(query, 5)
        assert [m.object_id for m in with_ranker] == [m.object_id for m in without]

"""Tests for the synthetic CAD datasets and part families."""

import numpy as np
import pytest

from repro.datasets.aircraft import AIRCRAFT_CLASSES, default_aircraft_size, make_aircraft_dataset
from repro.datasets.car import CAR_CLASSES, make_car_dataset
from repro.datasets.parts import (
    PART_FAMILIES,
    CADPart,
    make_noise_part,
    make_part,
    random_placement,
)
from repro.exceptions import DatasetError
from repro.voxel.voxelize import voxelize_solid


class TestPartFamilies:
    @pytest.mark.parametrize("family", sorted(PART_FAMILIES))
    def test_every_family_voxelizes_nonempty(self, family, rng):
        for _ in range(3):
            part = make_part(family, rng)
            grid = voxelize_solid(part.solid, resolution=15)
            assert grid.count > 0, family

    @pytest.mark.parametrize("family", sorted(PART_FAMILIES))
    def test_intra_family_variation_exists(self, family, rng):
        """Draws of a family differ (parameter jitter works).  Highly
        symmetric or slender parts can voxelize identically at coarse
        rasters (normalization removes absolute scale), so compare
        several draws at r=30."""
        grids = {
            voxelize_solid(
                make_part(family, rng, place=False).solid, resolution=30
            ).occupancy.tobytes()
            for _ in range(6)
        }
        assert len(grids) > 1

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(DatasetError):
            make_part("warp-drive", rng)

    def test_noise_parts_vary(self, rng):
        solids = [make_noise_part(rng) for _ in range(5)]
        grids = [voxelize_solid(s, resolution=10).occupancy.tobytes() for s in solids]
        assert len(set(grids)) == 5

    def test_random_placement_is_rigid(self, rng):
        transform = random_placement(rng)
        # Signed permutation times optional mirror: orthogonal matrix.
        assert np.allclose(transform.matrix @ transform.matrix.T, np.eye(3))


class TestCarDataset:
    def test_default_size_and_composition(self):
        parts, labels = make_car_dataset()
        assert len(parts) == sum(CAR_CLASSES.values()) + 16 == 200
        assert len(labels) == len(parts)
        families = {p.family for p in parts}
        assert families >= set(CAR_CLASSES) | {"noise"}

    def test_labels_match_parts(self):
        parts, labels = make_car_dataset()
        for part, label in zip(parts, labels):
            assert part.class_id == label
            if part.family == "noise":
                assert label < 0
            else:
                assert label >= 0

    def test_noise_labels_unique(self):
        _, labels = make_car_dataset()
        noise = labels[labels < 0]
        assert len(noise) == len(set(noise))

    def test_reproducible(self):
        a, _ = make_car_dataset(seed=7)
        b, _ = make_car_dataset(seed=7)
        ga = voxelize_solid(a[3].solid, 12)
        gb = voxelize_solid(b[3].solid, 12)
        assert np.array_equal(ga.occupancy, gb.occupancy)

    def test_seeds_differ(self):
        a, _ = make_car_dataset(seed=1)
        b, _ = make_car_dataset(seed=2)
        ga = voxelize_solid(a[3].solid, 12)
        gb = voxelize_solid(b[3].solid, 12)
        assert not np.array_equal(ga.occupancy, gb.occupancy)

    def test_custom_composition(self):
        parts, labels = make_car_dataset(class_counts={"tire": 5}, n_noise=2)
        assert len(parts) == 7

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_car_dataset(class_counts={"tire": -1})
        with pytest.raises(DatasetError):
            make_car_dataset(n_noise=-1)


class TestAircraftDataset:
    def test_size_parameter(self):
        parts, labels = make_aircraft_dataset(n=50)
        assert len(parts) == len(labels) == 50

    def test_small_parts_dominate(self):
        parts, _ = make_aircraft_dataset(n=400)
        small = sum(p.family in ("nut", "bolt", "rivet", "washer") for p in parts)
        large = sum(p.family in ("wing", "spar", "panel") for p in parts)
        assert small > 3 * large  # the paper's size skew

    def test_env_variable_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_AIRCRAFT_N", "123")
        assert default_aircraft_size() == 123

    def test_env_variable_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_AIRCRAFT_N", "bogus")
        with pytest.raises(DatasetError):
            default_aircraft_size()
        monkeypatch.setenv("REPRO_AIRCRAFT_N", "-5")
        with pytest.raises(DatasetError):
            default_aircraft_size()

    def test_invalid_n_rejected(self):
        with pytest.raises(DatasetError):
            make_aircraft_dataset(n=0)

    def test_reproducible(self):
        a, la = make_aircraft_dataset(n=30, seed=3)
        b, lb = make_aircraft_dataset(n=30, seed=3)
        assert np.array_equal(la, lb)
        assert [p.family for p in a] == [p.family for p in b]

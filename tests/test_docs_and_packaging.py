"""Repository-level consistency checks: docs, packaging, public API.

These tests keep the documentation honest: every example script exists
and is syntactically valid, every module named in DESIGN.md's inventory
imports, and the public API surface re-exported from ``repro`` works.
"""

import ast
import importlib
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

PUBLIC_MODULES = [
    "repro",
    "repro.cli",
    "repro.core",
    "repro.core.matching",
    "repro.core.min_matching",
    "repro.core.partial",
    "repro.core.permutation",
    "repro.core.queries",
    "repro.core.ranking",
    "repro.clustering",
    "repro.clustering.optics",
    "repro.clustering.xi",
    "repro.datasets",
    "repro.distances",
    "repro.evaluation",
    "repro.evaluation.figures",
    "repro.evaluation.knn_quality",
    "repro.evaluation.table1",
    "repro.evaluation.table2",
    "repro.features",
    "repro.features.beam",
    "repro.features.scaling",
    "repro.geometry",
    "repro.index",
    "repro.index.bulkload",
    "repro.io",
    "repro.normalize",
    "repro.pipeline",
    "repro.voxel",
    "repro.voxel.metrics",
]


class TestImports:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_exports_resolve(self):
        for module_name in ("repro.core", "repro.features", "repro.index",
                            "repro.clustering", "repro.voxel", "repro.distances"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module_name, name)


class TestExamples:
    def test_examples_exist_and_parse(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3, "need at least three example scripts"
        for path in examples:
            tree = ast.parse(path.read_text())
            docstring = ast.get_docstring(tree)
            assert docstring, f"{path.name} lacks a docstring"
            assert "main" in path.read_text(), f"{path.name} lacks a main()"

    def test_readme_mentions_every_example(self):
        readme = (REPO / "README.md").read_text()
        for path in sorted((REPO / "examples").glob("*.py")):
            assert path.name in readme, f"README does not mention {path.name}"


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).exists(), name

    def test_design_references_every_benchmark(self):
        """DESIGN.md promises a bench per table/figure; the files exist."""
        for bench in (
            "test_table1_permutations.py",
            "test_table2_knn_runtimes.py",
            "test_fig5_optics_demo.py",
            "test_fig6_histogram_models.py",
            "test_fig7_cover_sequence.py",
            "test_fig8_permutation_distance.py",
            "test_fig9_vector_set.py",
            "test_fig10_cluster_classes.py",
        ):
            assert (REPO / "benchmarks" / bench).exists(), bench

    def test_experiments_covers_all_tables_and_figures(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for item in ("Table 1", "Table 2", "Figure 5", "Figure 6", "Figure 7",
                     "Figure 8", "Figure 9", "Figure 10"):
            assert item in text, f"EXPERIMENTS.md misses {item}"

    def test_version_consistency(self):
        import repro

        pyproject = (REPO / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject

"""Tests for the minimum Euclidean distance under permutation (Def. 3/4)."""

import numpy as np
import pytest

from repro.core.permutation import (
    permutation_distance_bruteforce,
    permutation_distance_via_matching,
)
from repro.core.vector_set import VectorSet
from repro.exceptions import DistanceError


class TestEquivalence:
    def test_bruteforce_equals_matching_reduction(self, rng):
        """The paper's Section 4.2 claim, verified exactly: matching with
        squared Euclidean distance + squared norm weight, then sqrt,
        equals the k!-enumeration of Definition 4."""
        for _ in range(40):
            m, n = rng.integers(1, 6, size=2)
            x = rng.normal(size=(m, 3))
            y = rng.normal(size=(n, 3))
            brute = permutation_distance_bruteforce(x, y, d=3)
            fast = permutation_distance_via_matching(x, y, d=3)
            assert fast == pytest.approx(brute, abs=1e-9)

    def test_flat_vector_input(self, rng):
        """6k-dimensional one-vector inputs are split into blocks."""
        x = rng.normal(size=(3, 6))
        y = rng.normal(size=(3, 6))
        flat = permutation_distance_via_matching(x.reshape(-1), y.reshape(-1), d=6)
        rows = permutation_distance_via_matching(x, y, d=6)
        assert flat == pytest.approx(rows)

    def test_permuted_blocks_are_equal(self, rng):
        x = rng.normal(size=(4, 6))
        shuffled = x[rng.permutation(4)]
        assert permutation_distance_via_matching(x, shuffled) == pytest.approx(0.0)

    def test_reduces_to_plain_euclidean_for_k_one(self, rng):
        x = rng.normal(size=(1, 6))
        y = rng.normal(size=(1, 6))
        expected = float(np.linalg.norm(x - y))
        assert permutation_distance_via_matching(x, y) == pytest.approx(expected)

    def test_never_exceeds_identity_ordering(self, rng):
        """The optimum over permutations is at most the identity cost."""
        for _ in range(20):
            x = rng.normal(size=(5, 4))
            y = rng.normal(size=(5, 4))
            identity = float(np.linalg.norm(x - y))
            assert permutation_distance_via_matching(x, y, d=4) <= identity + 1e-9

    def test_dummy_padding_matches_explicit_zeros(self, rng):
        """A short set equals the same set explicitly padded with the
        dummy (zero) covers."""
        x = rng.normal(size=(2, 6))
        y = rng.normal(size=(4, 6))
        x_padded = np.vstack([x, np.zeros((2, 6))])
        assert permutation_distance_via_matching(x, y) == pytest.approx(
            permutation_distance_via_matching(x_padded, y)
        )


class TestValidation:
    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(DistanceError):
            permutation_distance_via_matching(
                rng.normal(size=(2, 3)), rng.normal(size=(2, 4))
            )

    def test_flat_vector_not_divisible_rejected(self, rng):
        with pytest.raises(DistanceError):
            permutation_distance_bruteforce(rng.normal(size=7), rng.normal(size=7), d=6)

    def test_capacity_overflow_rejected(self, rng):
        with pytest.raises(DistanceError):
            permutation_distance_bruteforce(
                rng.normal(size=(4, 3)), rng.normal(size=(2, 3)), d=3, k=3
            )

    def test_vector_set_inputs(self, rng):
        x = VectorSet(rng.normal(size=(3, 6)), capacity=7)
        y = VectorSet(rng.normal(size=(2, 6)), capacity=7)
        value = permutation_distance_via_matching(x, y)
        assert value == permutation_distance_via_matching(x.vectors, y.vectors)

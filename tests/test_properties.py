"""Cross-cutting property-based tests (hypothesis).

These test algebraic laws spanning several modules — the kind of
invariant a single-module unit test misses.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.centroid import extended_centroid
from repro.core.min_matching import min_matching_distance
from repro.core.permutation import permutation_distance_via_matching
from repro.features.cover_sequence import transform_cover_vectors
from repro.geometry.transform import symmetry_matrices
from repro.voxel.grid import VoxelGrid

SYMMETRIES = symmetry_matrices(include_reflections=True)

occupancy_grids = arrays(bool, (6, 6, 6), elements=st.booleans())

vector_sets = st.integers(1, 5).flatmap(
    lambda m: arrays(
        float, (m, 6), elements=st.floats(-10, 10, allow_nan=False, width=32)
    )
)

matrix_indices = st.integers(0, len(SYMMETRIES) - 1)


class TestGridTransformGroup:
    @given(occupancy_grids, matrix_indices, matrix_indices)
    @settings(max_examples=40, deadline=None)
    def test_transform_is_group_action(self, occupancy, i, j):
        """grid.transformed(A @ B) == grid.transformed(B).transformed(A)."""
        grid = VoxelGrid(occupancy)
        mat_a, mat_b = SYMMETRIES[i], SYMMETRIES[j]
        composed = grid.transformed(np.rint(mat_a @ mat_b))
        sequential = grid.transformed(mat_b).transformed(mat_a)
        assert np.array_equal(composed.occupancy, sequential.occupancy)

    @given(occupancy_grids, matrix_indices)
    @settings(max_examples=40, deadline=None)
    def test_transform_inverse_roundtrip(self, occupancy, i):
        grid = VoxelGrid(occupancy)
        mat = SYMMETRIES[i]
        roundtrip = grid.transformed(mat).transformed(np.rint(np.linalg.inv(mat)))
        assert np.array_equal(roundtrip.occupancy, grid.occupancy)

    @given(occupancy_grids, matrix_indices)
    @settings(max_examples=40, deadline=None)
    def test_transform_preserves_surface_count(self, occupancy, i):
        grid = VoxelGrid(occupancy)
        moved = grid.transformed(SYMMETRIES[i])
        assert moved.surface().sum() == grid.surface().sum()


class TestDistanceInvariances:
    @given(vector_sets, vector_sets, matrix_indices)
    @settings(max_examples=40, deadline=None)
    def test_matching_distance_is_symmetry_invariant(self, x, y, i):
        """Rotating BOTH cover sets by the same cube symmetry preserves
        the minimal matching distance (the element distance and the norm
        weight are rotation-invariant)."""
        mat = SYMMETRIES[i]
        before = min_matching_distance(x, y)
        after = min_matching_distance(
            transform_cover_vectors(x, mat), transform_cover_vectors(y, mat)
        )
        assert after == pytest.approx(before, abs=1e-6)

    @given(vector_sets, vector_sets)
    @settings(max_examples=40, deadline=None)
    def test_permutation_distance_bounded_by_matching_sum(self, x, y):
        """d_pi <= d_mm-ish sanity: both vanish together."""
        matching = min_matching_distance(x, y)
        permutation = permutation_distance_via_matching(x, y)
        if matching == pytest.approx(0.0, abs=1e-9):
            assert permutation == pytest.approx(0.0, abs=1e-6)

    @given(vector_sets, matrix_indices)
    @settings(max_examples=40, deadline=None)
    def test_centroid_commutes_with_symmetry(self, x, i):
        """C(M x) == M C(x) for omega = 0: the filter step respects the
        rotation group, so a rotated query can reuse rotated centroids."""
        mat = SYMMETRIES[i]
        moved = transform_cover_vectors(x, mat)
        lifted = np.zeros((6, 6))
        lifted[:3, :3] = mat
        lifted[3:, 3:] = np.abs(mat)
        expected = extended_centroid(x, 7) @ lifted.T
        assert np.allclose(extended_centroid(moved, 7), expected, atol=1e-9)


class TestScaleLaws:
    @given(vector_sets, vector_sets, st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_matching_distance_is_homogeneous(self, x, y, scale):
        """d(ax, ay) == a * d(x, y) — absolute homogeneity, the law the
        scaling-invariance toggle relies on."""
        base = min_matching_distance(x, y)
        scaled = min_matching_distance(x * scale, y * scale)
        assert scaled == pytest.approx(scale * base, rel=1e-6, abs=1e-6)

    @given(vector_sets, st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_centroid_is_homogeneous(self, x, scale):
        assert np.allclose(
            extended_centroid(x * scale, 7), scale * extended_centroid(x, 7)
        )

"""The approximate candidate tier: sketches, Hamming index, engine.

Three layers of assurance:

* property tests (hypothesis) for the algebra the tier relies on —
  sketches are permutation invariant over set elements, Hamming
  distance is a metric on packed codes, and a full-database shortlist
  contains the exact top-k by construction;
* a stateful differential machine interleaving add/remove/update/
  compact on :class:`SimilarityDatabase` and proving after every step
  that the incrementally-maintained sketch tier is *byte-identical* to
  a from-scratch rebuild, and that approx queries with a full budget
  reproduce the exact tier literally;
* snapshot round-trips (``.npz`` and dense mmap) carrying the
  projection matrix content-addressed by digest, plus corruption
  detection through ``repro db verify``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.approx import (
    ApproxFilterRefineEngine,
    HammingIndex,
    SetSketcher,
    default_shortlist,
)
from repro.core.queries import FilterRefineEngine
from repro.db import SimilarityDatabase
from repro.exceptions import QueryError, ReproError
from repro.seeding import resolve_seed, spawn

DIM = 5
SEED = 1234


def small_sets(min_sets=1, max_sets=8, max_rows=6):
    return st.lists(
        st.integers(min_value=1, max_value=max_rows),
        min_size=min_sets,
        max_size=max_sets,
    )


def materialize(row_counts, rng):
    return [rng.standard_normal((rows, DIM)) * 10.0 for rows in row_counts]


# -- SetSketcher ------------------------------------------------------------


class TestSetSketcher:
    def test_validation(self):
        with pytest.raises(QueryError):
            SetSketcher(DIM, width=100)  # not a multiple of 64
        with pytest.raises(QueryError):
            SetSketcher(DIM, nnz=0)
        with pytest.raises(QueryError):
            SetSketcher(DIM, nnz=DIM + 1)
        with pytest.raises(QueryError):
            SetSketcher(DIM, width=128, wta=129)
        with pytest.raises(QueryError):
            SetSketcher(DIM, pool="max")

    def test_same_seed_same_sketch(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((4, DIM))
        a = SetSketcher(DIM, seed=SEED)
        b = SetSketcher(DIM, seed=SEED)
        assert a.digest() == b.digest()
        assert np.array_equal(a.sketch(vectors), b.sketch(vectors))

    def test_different_seed_different_projection(self):
        a = SetSketcher(DIM, seed=SEED)
        b = SetSketcher(DIM, seed=SEED + 1)
        assert a.digest() != b.digest()

    @pytest.mark.parametrize("pool", ["or", "wta"])
    @given(perm_seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_permutation_invariance(self, pool, perm_seed):
        """Element order inside a set must never change the sketch."""
        rng = np.random.default_rng(perm_seed)
        vectors = rng.standard_normal((6, DIM)) * 5.0
        sketcher = SetSketcher(DIM, width=128, wta=12, seed=SEED, pool=pool)
        base = sketcher.sketch(vectors)
        shuffled = vectors[rng.permutation(len(vectors))]
        assert np.array_equal(base, sketcher.sketch(shuffled))

    def test_sketch_shape_and_dtype(self):
        sketcher = SetSketcher(DIM, width=192, wta=10, seed=SEED)
        code = sketcher.sketch(np.ones((3, DIM)))
        assert code.dtype == np.uint64
        assert code.shape == (sketcher.words,) == (3,)

    def test_snapshot_digest_mismatch_rejected(self):
        sketcher = SetSketcher(DIM, seed=SEED)
        params = {**sketcher.params(), "digest": sketcher.digest()}
        tampered = sketcher.projection.copy()
        tampered[0, 0] += 1.0
        with pytest.raises(QueryError):
            SetSketcher.from_snapshot(params, tampered)


# -- HammingIndex -----------------------------------------------------------

codes64 = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=2, max_size=2
).map(lambda ws: np.array(ws, dtype=np.uint64))


class TestHammingIndex:
    @given(a=codes64, b=codes64, c=codes64)
    @settings(max_examples=50, deadline=None)
    def test_metric_axioms(self, a, b, c):
        """Hamming distance on packed words: identity, symmetry, triangle."""
        index = HammingIndex(2)
        index.add(0, a)
        index.add(1, b)
        index.add(2, c)
        d = index.distances(np.stack([a, b, c]))
        assert d[0, 0] == 0 and d[1, 1] == 0 and d[2, 2] == 0
        assert d[0, 1] == d[1, 0] and d[0, 2] == d[2, 0]
        assert d[0, 2] <= d[0, 1] + d[1, 2]

    def test_duplicate_add_rejected(self):
        index = HammingIndex(1)
        index.add(7, np.zeros(1, dtype=np.uint64))
        with pytest.raises(QueryError):
            index.add(7, np.ones(1, dtype=np.uint64))

    def test_shortlist_full_budget_is_everything(self):
        rng = np.random.default_rng(3)
        index = HammingIndex(2)
        oids = [5, 1, 9, 3, 14]
        for oid in oids:
            index.add(oid, rng.integers(0, 2**63, 2).astype(np.uint64))
        query = rng.integers(0, 2**63, 2).astype(np.uint64)
        got = index.shortlist(query[None, :], len(oids) + 10)[0]
        assert sorted(got.tolist()) == sorted(oids)

    def test_shortlist_prefix_nesting(self):
        """A smaller budget must be a prefix of a larger one (same
        ranking, so the exact top-k survives any budget >= its rank)."""
        rng = np.random.default_rng(4)
        index = HammingIndex(2)
        for oid in range(30):
            index.add(oid, rng.integers(0, 2**63, 2).astype(np.uint64))
        query = rng.integers(0, 2**63, 2).astype(np.uint64)
        big = index.shortlist(query[None, :], 20)[0]
        small = index.shortlist(query[None, :], 5)[0]
        assert small.tolist() == big[:5].tolist()

    def test_remove_and_update(self):
        rng = np.random.default_rng(5)
        index = HammingIndex(1)
        for oid in range(5):
            index.add(oid, rng.integers(0, 2**63, 1).astype(np.uint64))
        before = index.digest()
        index.remove(2)
        assert 2 not in index.oids.tolist()
        index.add(2, rng.integers(0, 2**63, 1).astype(np.uint64))
        code = np.array([12345], dtype=np.uint64)
        index.update(2, code)
        row = index.oids.tolist().index(2)
        assert index.codes[row, 0] == 12345
        assert index.digest() != before


# -- ApproxFilterRefineEngine ----------------------------------------------


def build_tier(sets, seed=SEED):
    dim = sets[0].shape[1]
    # Capacity covers the stored sets AND the (<= 4-row) test queries.
    engine = FilterRefineEngine(sets, capacity=max(4, *(len(s) for s in sets)))
    sketcher = SetSketcher(dim, width=128, wta=12, seed=seed)
    hamming = HammingIndex(sketcher.words)
    for oid, vectors in enumerate(sets):
        hamming.add(oid, sketcher.sketch(vectors))
    return ApproxFilterRefineEngine(engine, sketcher, hamming)


class TestApproxEngine:
    def test_default_shortlist_oversamples(self):
        assert default_shortlist(1) == 64
        assert default_shortlist(10) == 80

    def test_word_mismatch_rejected(self):
        sets = [np.ones((2, DIM))]
        engine = FilterRefineEngine(sets, capacity=2)
        sketcher = SetSketcher(DIM, width=128, seed=SEED)
        with pytest.raises(QueryError):
            ApproxFilterRefineEngine(engine, sketcher, HammingIndex(1))

    @given(row_counts=small_sets(min_sets=3), budget=st.integers(1, 40))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_never_crashes_and_oids_exist(self, row_counts, budget):
        """Any budget: valid oids, no duplicates, canonical order."""
        rng = np.random.default_rng(11)
        sets = materialize(row_counts, rng)
        tier = build_tier(sets)
        query = rng.standard_normal((2, DIM))
        results, stats = tier.knn_query(query, 3, shortlist=budget)
        oids = [m.object_id for m in results]
        assert len(oids) == len(set(oids))
        assert set(oids) <= set(range(len(sets)))
        keys = [(m.distance, m.object_id) for m in results]
        assert keys == sorted(keys)
        assert stats.exact_computations <= max(budget, 3, len(sets))

    @given(row_counts=small_sets(min_sets=4))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_full_budget_equals_exact(self, row_counts):
        """shortlist >= n refines everything: literally the exact result."""
        rng = np.random.default_rng(12)
        sets = materialize(row_counts, rng)
        tier = build_tier(sets)
        query = rng.standard_normal((3, DIM))
        approx, _ = tier.knn_query(query, 3, shortlist=len(sets))
        exact, _ = tier.engine.knn_query(query, 3)
        assert approx == exact

    def test_oracle_overlap_bounds(self):
        rng = np.random.default_rng(13)
        sets = materialize([3] * 12, rng)
        tier = build_tier(sets)
        query = rng.standard_normal((3, DIM))
        approx, exact, overlap = tier.knn_query_with_oracle(
            query, 4, shortlist=len(sets)
        )
        assert overlap == 1.0
        assert approx == exact


# -- database integration: incremental == fresh ----------------------------


def fresh_sketch_digest(db: SimilarityDatabase) -> str:
    """What the sketch tier would be if rebuilt from scratch right now."""
    if db.dimension is None:
        return "empty"
    sketcher = SetSketcher(db.dimension, **db._sketch_params)
    hamming = HammingIndex(sketcher.words)
    for oid in sorted(db.object_ids()):
        hamming.add(oid, sketcher.sketch(db.get(oid)))
    return hamming.digest()


class ApproxDifferentialMachine(RuleBasedStateMachine):
    """Incremental sketch maintenance must equal a from-scratch build."""

    def __init__(self):
        super().__init__()
        self.db = SimilarityDatabase(
            6, backend="scan", sketch_params={"width": 128, "wta": 12}
        )
        self.rng = np.random.default_rng(99)
        self.next_oid = 0

    @rule(rows=st.integers(min_value=1, max_value=6))
    def add(self, rows):
        self.db.add(self.next_oid, self.rng.standard_normal((rows, DIM)))
        self.next_oid += 1

    @precondition(lambda self: len(self.db) > 0)
    @rule(data=st.data())
    def remove(self, data):
        oid = data.draw(st.sampled_from(self.db.object_ids()))
        assert self.db.remove(oid)

    @precondition(lambda self: len(self.db) > 0)
    @rule(data=st.data(), rows=st.integers(min_value=1, max_value=6))
    def update(self, data, rows):
        oid = data.draw(st.sampled_from(self.db.object_ids()))
        self.db.update(oid, self.rng.standard_normal((rows, DIM)))

    @rule()
    def compact(self):
        self.db.compact()

    @invariant()
    def incremental_matches_fresh(self):
        assert self.db.sketch_digest() == fresh_sketch_digest(self.db)

    @invariant()
    def full_budget_matches_exact(self):
        if not len(self.db):
            return
        query = self.rng.standard_normal((2, DIM))
        exact = self.db.knn_query(query, 3)[0]
        approx = self.db.knn_query(
            query, 3, mode="approx", shortlist=len(self.db)
        )[0]
        assert approx == exact


ApproxDifferentialMachine.TestCase.settings = settings(
    max_examples=15,
    stateful_step_count=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
TestApproxDifferential = ApproxDifferentialMachine.TestCase


class TestDatabaseApproxMode:
    def make_db(self, n=20):
        rng = np.random.default_rng(21)
        db = SimilarityDatabase(6, backend="xtree")
        for oid in range(n):
            db.add(oid, rng.standard_normal((int(rng.integers(1, 5)), DIM)))
        return db, rng

    def test_mode_validation(self):
        db, rng = self.make_db(4)
        query = rng.standard_normal((2, DIM))
        with pytest.raises(QueryError):
            db.knn_query(query, 2, mode="fuzzy")
        with pytest.raises(QueryError):
            db.knn_query(query, 2, shortlist=5)  # exact mode

    def test_sketch_disabled_paths(self):
        db = SimilarityDatabase(6, backend="scan", sketch=False)
        db.add(0, np.ones((2, DIM)))
        assert db.sketch_digest() == "disabled"
        with pytest.raises(QueryError):
            db.knn_query(np.ones((1, DIM)), 1, mode="approx")
        with pytest.raises(QueryError):
            SimilarityDatabase(6, sketch=False, sketch_params={"width": 128})

    def test_every_budget_returns_valid_results(self):
        db, rng = self.make_db(15)
        query = rng.standard_normal((2, DIM))
        exact = db.knn_query(query, 5)[0]
        for budget in (1, 2, 5, 14, 15, 100):
            approx = db.knn_query(
                query, 5, mode="approx", shortlist=budget
            )[0]
            oids = [m.object_id for m in approx]
            assert set(oids) <= set(db.object_ids())
            assert len(oids) == len(set(oids))
            if budget >= len(db):
                assert approx == exact

    def test_read_view_approx(self):
        db, rng = self.make_db(10)
        query = rng.standard_normal((2, DIM))
        with db.read_view() as view:
            approx = view.knn_query(
                query, 3, mode="approx", shortlist=len(db)
            )[0]
        assert approx == db.knn_query(query, 3)[0]


# -- snapshot round-trips ---------------------------------------------------


class TestSketchSnapshots:
    def make_db(self, n=12):
        rng = np.random.default_rng(31)
        db = SimilarityDatabase(6, backend="xtree")
        for oid in range(n):
            db.add(oid, rng.standard_normal((int(rng.integers(1, 5)), DIM)))
        return db, rng

    @pytest.mark.parametrize("dense", [False, True])
    def test_roundtrip_preserves_sketch_tier(self, tmp_path, dense):
        db, rng = self.make_db()
        path = tmp_path / ("db.dns" if dense else "db.npz")
        db.save(path, dense=dense)
        loaded = SimilarityDatabase.load(path)
        assert loaded.sketch_digest() == db.sketch_digest()
        assert np.array_equal(
            loaded._sketcher.projection, db._sketcher.projection
        )
        query = rng.standard_normal((2, DIM))
        assert (
            loaded.knn_query(query, 3, mode="approx", shortlist=len(db))[0]
            == db.knn_query(query, 3)[0]
        )

    @pytest.mark.parametrize("dense", [False, True])
    def test_loaded_db_still_mutable(self, tmp_path, dense):
        """Mutations after a (possibly zero-copy) load keep the tier in
        sync — the mmapped code matrix is reallocated, never written."""
        db, rng = self.make_db()
        path = tmp_path / ("db.dns" if dense else "db.npz")
        db.save(path, dense=dense)
        loaded = SimilarityDatabase.load(path)
        loaded.add(100, rng.standard_normal((3, DIM)))
        loaded.remove(0)
        loaded.update(1, rng.standard_normal((2, DIM)))
        assert loaded.sketch_digest() == fresh_sketch_digest(loaded)

    def test_sketch_disabled_roundtrip(self, tmp_path):
        db = SimilarityDatabase(6, backend="scan", sketch=False)
        db.add(0, np.ones((2, DIM)))
        path = tmp_path / "nosketch.npz"
        db.save(path)
        loaded = SimilarityDatabase.load(path)
        assert loaded.sketch_digest() == "disabled"

    def test_corrupted_snapshot_fails_verify(self, tmp_path):
        from repro.cli import main

        db, _ = self.make_db()
        path = tmp_path / "db.npz"
        db.save(path)
        assert main(["db", "verify", str(path)]) == 0
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert main(["db", "verify", str(path)]) == 1


# -- seed determinism across processes -------------------------------------

_SKETCH_SNIPPET = """
import sys
import numpy as np
from repro.approx import SetSketcher
from repro.seeding import resolve_seed, spawn

seed = resolve_seed(None)
rng = spawn(seed, "determinism-probe")
vectors = rng.standard_normal((5, 4)) * 7.0
sketcher = SetSketcher(4, width=128, wta=9, seed=seed)
sys.stdout.write(sketcher.digest() + ":" + sketcher.sketch(vectors).tobytes().hex())
"""


def _run_probe(env_seed=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    if env_seed is None:
        env.pop("REPRO_SEED", None)
    else:
        env["REPRO_SEED"] = str(env_seed)
    out = subprocess.run(
        [sys.executable, "-c", _SKETCH_SNIPPET],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return out.stdout


class TestSeedDeterminism:
    def test_two_processes_byte_identical(self):
        assert _run_probe() == _run_probe()

    def test_env_seed_changes_and_reproduces(self):
        base = _run_probe()
        seeded = _run_probe(env_seed=777)
        assert seeded != base
        assert seeded == _run_probe(env_seed=777)

    def test_resolve_seed_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert resolve_seed(None) == 42
        assert resolve_seed(7) == 7  # explicit beats env
        monkeypatch.setenv("REPRO_SEED", "not-an-int")
        with pytest.raises(ReproError):
            resolve_seed(None)

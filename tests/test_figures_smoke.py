"""Small-scale smoke tests of the figure drivers (tiny datasets, fast).

The full-size experiments live in ``benchmarks/``; these tests protect
the driver plumbing (panel configs, distance kinds, class evaluation)
against regressions at CI speed.
"""

import os

import numpy as np
import pytest

from repro.evaluation.figures import (
    FIGURE_PANELS,
    figure5_demo,
    figure10_class_evaluation,
    run_figure,
    run_panel,
)
from repro.exceptions import ReproError


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestPanels:
    @pytest.mark.parametrize("figure", sorted(FIGURE_PANELS))
    def test_every_panel_runs_on_tiny_aircraft(self, figure):
        result = run_panel(figure, "aircraft", n=25, min_pts=3)
        assert len(result.ordering) == 25
        assert np.isfinite(result.contrast)
        rendered = result.render(height=4, width=40)
        assert figure in rendered

    def test_unknown_panel_rejected(self):
        with pytest.raises(ReproError):
            run_panel("fig99-warp", "car")

    def test_run_figure_prefix(self):
        results = run_figure("fig9", datasets=("aircraft",), n=25)
        assert len(results) == 2  # k=3 and k=7 panels
        assert {r.figure for r in results} == {
            "fig9-vector-set-3",
            "fig9-vector-set-7",
        }

    def test_run_figure_bad_prefix(self):
        with pytest.raises(ReproError):
            run_figure("fig42")


class TestFigure5:
    def test_demo_is_deterministic(self):
        a = figure5_demo(seed=1)
        b = figure5_demo(seed=1)
        assert np.array_equal(a.ordering.order, b.ordering.order)

    def test_different_seeds_differ(self):
        a = figure5_demo(seed=1)
        b = figure5_demo(seed=2)
        assert not np.array_equal(a.ordering.order, b.ordering.order)


class TestFigure10:
    def test_class_evaluation_structure(self):
        evaluations = figure10_class_evaluation(
            figures=("fig9-vector-set-7",), dataset="aircraft", n=25
        )
        # NOTE: dataset='aircraft' here only exercises the driver; the
        # real experiment (benchmarks) runs the paper's car dataset.
        assert len(evaluations) == 1
        evaluation = evaluations[0]
        assert evaluation.clusters, "no clusters at the best cut"
        for composition in evaluation.clusters:
            assert all(count > 0 for count in composition.values())

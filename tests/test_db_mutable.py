"""Acceptance tests for the mutable similarity database.

The two headline guarantees from the issue:

* after ANY interleaved add/remove/update workload, a k-nn query
  against the incrementally maintained index returns *byte-identical*
  results to a freshly rebuilt index;
* a snapshot saved, reloaded in a NEW PROCESS, and queried returns the
  same results with ZERO rebuild work (no ``insert`` runs on load —
  asserted by monkeypatching, and by ``structure_digest`` equality
  across the process boundary).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from contextlib import contextmanager

from repro import obs
from repro.db import BACKENDS, SimilarityDatabase
from repro.exceptions import QueryError, StorageError
from repro.index import MTree, RStarTree, XTree


@contextmanager
def capture_metrics():
    """Enable the process metrics registry for one test body."""
    reg = obs.registry()
    reg.reset()
    obs.enable()
    try:
        yield reg
    finally:
        reg.reset()
        obs.disable()

CAPACITY = 4
DIM = 3

ALL = list(BACKENDS)


def rand_set(rng):
    return rng.integers(-8, 9, size=(int(rng.integers(1, CAPACITY + 1)), DIM)).astype(
        float
    )


def churn(db, rng, adds=40, removes=12, updates=6):
    """A deterministic interleaved workload; returns the surviving sets."""
    contents = {}
    oid = 0
    for step in range(adds):
        arr = rand_set(rng)
        db.add(oid, arr)
        contents[oid] = arr
        oid += 1
        if step % 3 == 2 and removes:
            victim = int(rng.choice(sorted(contents)))
            assert db.remove(victim)
            del contents[victim]
            removes -= 1
        if step % 5 == 4 and updates:
            target = int(rng.choice(sorted(contents)))
            arr = rand_set(rng)
            db.update(target, arr)
            contents[target] = arr
            updates -= 1
    return contents


def results_tuple(results):
    return [(m.object_id, m.distance) for m in results]


class TestIncrementalEqualsRebuilt:
    @pytest.mark.parametrize("backend", ALL)
    def test_knn_byte_identical_to_fresh_build(self, backend, rng):
        db = SimilarityDatabase(
            CAPACITY, backend=backend, index_capacity=4
        )
        contents = churn(db, rng)
        # A brand-new database with the same final contents: its index
        # was bulk-built, never mutated.
        fresh = SimilarityDatabase(
            CAPACITY, backend=backend, index_capacity=4
        )
        for oid in sorted(contents):
            fresh.add(oid, contents[oid])
        for qi in range(6):
            query = rand_set(rng)
            for k in (1, 5, len(contents)):
                got, _ = db.knn_query(query, k)
                want, _ = fresh.knn_query(query, k)
                assert results_tuple(got) == results_tuple(want), (backend, qi, k)

    @pytest.mark.parametrize("backend", ALL)
    def test_compact_changes_nothing_observable(self, backend, rng):
        db = SimilarityDatabase(
            CAPACITY, backend=backend, index_capacity=4
        )
        churn(db, rng)
        query = rand_set(rng)
        before_knn, _ = db.knn_query(query, 8)
        before_range, _ = db.range_query(query, 4.0)
        db.compact()
        after_knn, _ = db.knn_query(query, 8)
        after_range, _ = db.range_query(query, 4.0)
        assert results_tuple(before_knn) == results_tuple(after_knn)
        assert results_tuple(before_range) == results_tuple(after_range)

    def test_range_query_matches_sequential(self, rng):
        db = SimilarityDatabase(CAPACITY, backend="xtree", index_capacity=4)
        contents = churn(db, rng)
        scan = SimilarityDatabase(CAPACITY, backend="scan")
        for oid in sorted(contents):
            scan.add(oid, contents[oid])
        query = rand_set(rng)
        for eps in (0.5, 2.75, 6.0):
            got, _ = db.range_query(query, eps)
            want, _ = scan.range_query(query, eps)
            assert results_tuple(got) == results_tuple(want)


class TestEngineInvalidation:
    def test_queries_never_see_stale_candidates(self, rng):
        """Every mutation must invalidate the packed engine: a removed
        object can never reappear, an added one is visible at once."""
        db = SimilarityDatabase(CAPACITY, backend="rstar", index_capacity=4)
        a, b = rand_set(rng), rand_set(rng)
        db.add(1, a)
        db.add(2, b)
        assert {m.object_id for m in db.knn_query(a, 2)[0]} == {1, 2}
        db.remove(1)
        results, _ = db.knn_query(a, 5)
        assert [m.object_id for m in results] == [2]
        db.add(3, a)
        results, _ = db.knn_query(a, 1)
        assert results[0].object_id == 3 and results[0].distance == 0.0
        db.update(2, a)
        results, _ = db.knn_query(a, 5)
        assert {m.distance for m in results} == {0.0}

    def test_engine_rebuilds_are_lazy_and_batched(self, rng):
        db = SimilarityDatabase(CAPACITY, backend="rstar", index_capacity=4)
        with capture_metrics() as reg:
            for oid in range(8):
                db.add(oid, rand_set(rng))
            assert reg.counter("db.engine_rebuilds").value == 0
            db.knn_query(rand_set(rng), 2)
            assert reg.counter("db.engine_rebuilds").value == 1
            db.knn_query(rand_set(rng), 2)  # no mutation in between
            assert reg.counter("db.engine_rebuilds").value == 1
            db.remove(0)
            db.knn_query(rand_set(rng), 2)
            assert reg.counter("db.engine_rebuilds").value == 2

    def test_mutation_counters(self, rng):
        db = SimilarityDatabase(CAPACITY, backend="scan")
        with capture_metrics() as reg:
            db.add(1, rand_set(rng))
            db.add(2, rand_set(rng))
            db.update(2, rand_set(rng))
            db.remove(1)
            assert reg.counter("db.mutations.add").value == 2
            assert reg.counter("db.mutations.update").value == 1
            assert reg.counter("db.mutations.remove").value == 1
            assert reg.gauge("db.size").value == 1


class TestValidation:
    def test_rejects_bad_input(self, rng):
        db = SimilarityDatabase(CAPACITY)
        db.add(1, rand_set(rng))
        with pytest.raises(QueryError):
            db.add(1, rand_set(rng))  # duplicate id
        with pytest.raises(QueryError):
            db.add(2, rng.normal(size=(CAPACITY + 1, DIM)))  # over capacity
        with pytest.raises(QueryError):
            db.add(2, rng.normal(size=(2, DIM + 1)))  # wrong dimension
        with pytest.raises(QueryError):
            db.update(99, rand_set(rng))  # unknown id
        with pytest.raises(QueryError):
            db.add(2, np.full((1, DIM), np.nan))  # non-finite
        assert db.version == 1  # failed mutations must not bump
        assert db.remove(99) is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError):
            SimilarityDatabase(CAPACITY, backend="btree")

    def test_version_and_views(self, rng):
        db = SimilarityDatabase(CAPACITY, backend="scan")
        assert db.version == 0
        db.add(1, rand_set(rng))
        db.add(2, rand_set(rng))
        assert db.version == 2
        with db.read_view() as view:
            assert view.version == 2
            assert view.size == 2
            results, _ = view.knn_query(rand_set(rng), 2)
            assert len(results) == 2
        assert db.object_ids() == [1, 2]
        assert 1 in db and 99 not in db
        np.testing.assert_array_equal(db.get(1), db._sets[1])
        with pytest.raises(QueryError):
            db.get(99)

    def test_empty_database_queries(self, rng):
        db = SimilarityDatabase(CAPACITY)
        results, stats = db.knn_query(rand_set(rng), 3)
        assert results == [] and stats.exact_computations == 0
        results, _ = db.range_query(rand_set(rng), 1.0)
        assert results == []
        assert db.index_digest() == "empty"


class TestSnapshotAcceptance:
    @pytest.mark.parametrize("backend", ALL)
    def test_reload_is_zero_rebuild(self, backend, rng, tmp_path, monkeypatch):
        """load() must reconstruct the index without a single insert."""
        db = SimilarityDatabase(
            CAPACITY, backend=backend, index_capacity=4
        )
        churn(db, rng)
        path = tmp_path / "db.snap"
        db.save(path)
        query = rand_set(rng)
        want, _ = db.knn_query(query, 7)
        digest = db.index_digest()

        def boom(*a, **k):  # any rebuild work fails the test
            raise AssertionError("load() must not insert")

        for cls in (RStarTree, XTree, MTree):
            monkeypatch.setattr(cls, "insert", boom)
        loaded = SimilarityDatabase.load(path)
        assert loaded.index_digest() == digest
        assert loaded.version == db.version
        got, _ = loaded.knn_query(query, 7)
        assert results_tuple(got) == results_tuple(want)

    def test_reload_in_new_process(self, rng, tmp_path):
        """The full acceptance criterion: a different interpreter loads
        the snapshot and answers identically, without rebuild work."""
        db = SimilarityDatabase(CAPACITY, backend="xtree", index_capacity=4)
        churn(db, rng)
        path = tmp_path / "db.snap"
        db.save(path)
        query = rand_set(rng)
        want, _ = db.knn_query(query, 9)
        expected = {
            "digest": db.index_digest(),
            "results": [[m.object_id, m.distance] for m in want],
        }
        script = """
import json, sys
import numpy as np
from repro.db import SimilarityDatabase
from repro.index import RStarTree, XTree, MTree

def boom(*a, **k):
    raise SystemExit("rebuild work detected")
RStarTree.insert = boom  # XTree inherits
MTree.insert = boom

db = SimilarityDatabase.load(sys.argv[1])
query = np.asarray(json.loads(sys.argv[2]))
results, _ = db.knn_query(query, 9)
print(json.dumps({
    "digest": db.index_digest(),
    "results": [[m.object_id, m.distance] for m in results],
}))
"""
        src_dir = Path(__file__).resolve().parent.parent / "src"
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path), json.dumps(query.tolist())],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == expected

    def test_snapshot_corruption_detected(self, rng, tmp_path):
        db = SimilarityDatabase(CAPACITY, backend="rstar", index_capacity=4)
        churn(db, rng, adds=12)
        path = tmp_path / "db.snap"
        db.save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2 + 11] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError):
            SimilarityDatabase.load(path)

    def test_save_is_atomic_under_failure(self, rng, tmp_path, monkeypatch):
        """A crash mid-save must leave the previous snapshot intact."""
        db = SimilarityDatabase(CAPACITY, backend="scan")
        churn(db, rng, adds=8)
        path = tmp_path / "db.snap"
        db.save(path)
        good = path.read_bytes()
        db.add(500, rand_set(rng))
        import repro.index.snapshot as snap_mod

        def crash(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(snap_mod.os, "replace", crash)
        with pytest.raises(OSError):
            db.save(path)
        assert path.read_bytes() == good
        leftovers = [p for p in tmp_path.iterdir() if p.name != "db.snap"]
        assert leftovers == []

    def test_empty_database_roundtrip(self, tmp_path, rng):
        db = SimilarityDatabase(CAPACITY, backend="xtree")
        path = tmp_path / "empty.snap"
        db.save(path)
        loaded = SimilarityDatabase.load(path)
        assert len(loaded) == 0
        loaded.add(1, rand_set(rng))  # stays usable
        assert loaded.knn_query(rand_set(rng), 1)[0][0].object_id == 1


class TestGridIngestPath:
    def test_add_grid_flows_through_cache(self, lshape_grid, tire_grid):
        from repro.features.cache import FeatureCache
        from repro.features.vector_set_model import VectorSetModel
        from repro.pipeline import Pipeline

        model = VectorSetModel(k=CAPACITY)
        cache = FeatureCache()
        db = SimilarityDatabase(
            CAPACITY,
            backend="rstar",
            model=model,
            pipeline=Pipeline(resolution=12),
            cache=cache,
        )
        first = db.add_grid(1, lshape_grid)
        assert cache.misses == 1 and cache.hits == 0
        db.add_grid(2, tire_grid)
        db.remove(1)
        again = db.add_grid(3, lshape_grid)  # second extraction: cache hit
        assert cache.hits == 1
        np.testing.assert_array_equal(first, again)
        results, _ = db.knn_query(first, 1)
        assert results[0].object_id == 3 and results[0].distance == 0.0

    def test_add_grid_requires_model(self, lshape_grid):
        db = SimilarityDatabase(CAPACITY)
        with pytest.raises(QueryError):
            db.add_grid(1, lshape_grid)

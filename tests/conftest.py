"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.geometry.sdf import Box, Cylinder, Sphere, Torus
from repro.voxel.voxelize import voxelize_solid

try:
    from hypothesis import HealthCheck, settings
except ImportError:  # hypothesis is optional outside CI
    pass
else:
    # Two effort tiers for the property/stateful tests: "dev" keeps the
    # local edit-test loop fast, "ci" buys much deeper exploration on the
    # build machines.  Select with HYPOTHESIS_PROFILE=ci (the CI workflow
    # sets it; locally the default applies).
    _common = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile(
        "ci", max_examples=150, stateful_step_count=50, **_common
    )
    settings.register_profile(
        "dev", max_examples=20, stateful_step_count=15, **_common
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point REPRO_CACHE_DIR at a session temp dir so tests never write
    a ``.repro_cache`` into the working directory (and never read a
    developer's warm cache)."""
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def lshape_grid():
    """A small asymmetric L-shaped solid on a 12^3 grid — handy because
    it has no nontrivial symmetry and needs two covers exactly."""
    solid = Box(size=(2.0, 1.0, 0.5)) | Box(center=(0.6, 0.0, 0.75), size=(0.8, 1.0, 1.0))
    return voxelize_solid(solid, resolution=12)


@pytest.fixture
def tire_grid():
    """A torus (tire-like) on the paper's r=15 raster."""
    return voxelize_solid(Torus(major_radius=1.0, minor_radius=0.35), resolution=15)


@pytest.fixture
def sphere_grid():
    """A ball on a 15^3 raster (maximal symmetry)."""
    return voxelize_solid(Sphere(radius=1.0), resolution=15)


@pytest.fixture
def rod_grid():
    """A thin cylinder along x (strongly anisotropic)."""
    return voxelize_solid(Cylinder(radius=0.25, height=2.5, axis="x"), resolution=15)


def random_vector_sets(rng, count, dim=6, max_size=7):
    """Helper used across distance tests."""
    return [
        rng.normal(size=(rng.integers(1, max_size + 1), dim)) for _ in range(count)
    ]

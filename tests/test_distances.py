"""Tests for the L_p family and the Eiter–Mannila set distances."""

from itertools import product

import numpy as np
import pytest

from repro.core.min_matching import min_matching_distance
from repro.distances.lp import euclidean, lp_distance, manhattan, maximum_distance
from repro.distances.netflow import netflow_distance
from repro.distances.set_distances import (
    fair_surjection_distance,
    hausdorff_distance,
    link_distance,
    sum_of_minimum_distances,
    surjection_distance,
)
from repro.exceptions import DistanceError


class TestLp:
    def test_known_values(self):
        x, y = np.array([0.0, 0.0]), np.array([3.0, 4.0])
        assert euclidean(x, y) == pytest.approx(5.0)
        assert manhattan(x, y) == pytest.approx(7.0)
        assert maximum_distance(x, y) == pytest.approx(4.0)

    def test_p_three(self):
        assert lp_distance(np.zeros(2), np.array([1.0, 1.0]), 3) == pytest.approx(
            2 ** (1 / 3)
        )

    def test_p_below_one_rejected(self):
        with pytest.raises(DistanceError):
            lp_distance(np.zeros(2), np.ones(2), 0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DistanceError):
            euclidean(np.zeros(2), np.zeros(3))


def brute_surjection(x, y):
    m, n = len(x), len(y)
    if m < n:
        x, y, m, n = y, x, n, m
    best = np.inf
    for mapping in product(range(n), repeat=m):
        if set(mapping) == set(range(n)):
            best = min(
                best, sum(np.linalg.norm(x[i] - y[mapping[i]]) for i in range(m))
            )
    return best


class TestHausdorffAndSmd:
    def test_hausdorff_symmetric(self, rng):
        x, y = rng.normal(size=(4, 2)), rng.normal(size=(6, 2))
        assert hausdorff_distance(x, y) == pytest.approx(hausdorff_distance(y, x))

    def test_hausdorff_dominated_by_outlier(self):
        """The paper's complaint: one extreme element dominates."""
        x = np.array([[0.0, 0.0], [100.0, 0.0]])
        y = np.array([[0.0, 0.0]])
        assert hausdorff_distance(x, y) == pytest.approx(100.0)
        # The matching distance spreads the cost instead.
        assert min_matching_distance(x, y) == pytest.approx(100.0)
        # ...but for *near* matches Hausdorff ignores everything else:
        x2 = np.array([[0.0, 0.1], [1.0, 0.2], [2.0, 0.3]])
        y2 = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        assert hausdorff_distance(x2, y2) == pytest.approx(0.3)

    def test_smd_identical_sets_zero(self, rng):
        x = rng.normal(size=(5, 3))
        assert sum_of_minimum_distances(x, x) == pytest.approx(0.0)

    def test_smd_is_not_a_metric(self):
        """The triangle inequality fails for the sum of minimum
        distances (the reason the paper rejects it, Section 4.2); a
        seeded search reliably finds a violating triple."""
        rng = np.random.default_rng(5)
        for _ in range(2000):
            a = rng.normal(size=(2, 1))
            b = rng.normal(size=(2, 1))
            c = rng.normal(size=(2, 1))
            via = sum_of_minimum_distances(a, c) + sum_of_minimum_distances(c, b)
            if sum_of_minimum_distances(a, b) > via + 1e-9:
                return  # violation found: not a metric
        pytest.fail("no triangle-inequality violation found for SMD")


class TestSurjections:
    def test_matches_brute_force(self, rng):
        for _ in range(15):
            m, n = rng.integers(1, 4, size=2)
            x, y = rng.normal(size=(m, 2)), rng.normal(size=(n, 2))
            assert surjection_distance(x, y) == pytest.approx(brute_surjection(x, y))

    def test_equal_sizes_equal_matching(self, rng):
        """For equal cardinalities a surjection is a bijection, so the
        surjection distance equals the matching distance."""
        x, y = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
        assert surjection_distance(x, y) == pytest.approx(
            min_matching_distance(x, y, weight=lambda a: np.zeros(len(a)))
        )

    def test_fair_surjection_at_least_surjection(self, rng):
        """Fairness is a constraint, so the fair optimum can't be better."""
        for _ in range(10):
            x = rng.normal(size=(5, 2))
            y = rng.normal(size=(2, 2))
            assert (
                fair_surjection_distance(x, y) >= surjection_distance(x, y) - 1e-9
            )

    def test_fair_surjection_balances(self):
        """4 elements onto 2 targets: fair forces a 2+2 split even when
        3+1 would be cheaper."""
        x = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([[0.0], [10.0]])
        unfair = surjection_distance(x, y)  # 3 onto 0.0, 1 onto 10.0
        fair = fair_surjection_distance(x, y)
        assert fair > unfair

    def test_symmetric_in_argument_order(self, rng):
        x, y = rng.normal(size=(5, 2)), rng.normal(size=(3, 2))
        assert surjection_distance(x, y) == pytest.approx(surjection_distance(y, x))


class TestLinkDistance:
    def test_identical_sets(self, rng):
        x = rng.normal(size=(4, 2))
        assert link_distance(x, x) == pytest.approx(0.0)

    def test_singleton_to_set_links_everything(self):
        x = np.array([[0.0, 0.0]])
        y = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 0.0]])
        # Every y must link to the single x.
        assert link_distance(x, y) == pytest.approx(1.0 + 2.0 + 3.0)

    def test_never_exceeds_matching_for_equal_sizes(self, rng):
        """A perfect matching is a valid edge cover, so the optimal
        cover can only be cheaper."""
        for _ in range(10):
            x, y = rng.normal(size=(4, 3)), rng.normal(size=(4, 3))
            matching = min_matching_distance(x, y, weight=lambda a: np.zeros(len(a)))
            assert link_distance(x, y) <= matching + 1e-9


class TestNetflow:
    def test_unit_multiplicities_equal_matching(self, rng):
        x, y = rng.normal(size=(4, 3)), rng.normal(size=(2, 3))
        assert netflow_distance(x, y) == pytest.approx(min_matching_distance(x, y))

    def test_multiplicities_equal_explicit_expansion(self, rng):
        x = rng.normal(size=(2, 3))
        y = rng.normal(size=(3, 3))
        expanded = netflow_distance(
            x, y, multiplicities_x=np.array([2, 3]), multiplicities_y=np.array([1, 1, 1])
        )
        manual = min_matching_distance(np.repeat(x, [2, 3], axis=0), y)
        assert expanded == pytest.approx(manual)

    def test_invalid_multiplicities_rejected(self, rng):
        x = rng.normal(size=(2, 3))
        with pytest.raises(DistanceError):
            netflow_distance(x, x, multiplicities_x=np.array([0, 1]))
        with pytest.raises(DistanceError):
            netflow_distance(x, x, multiplicities_x=np.array([1.5, 1.0]))
        with pytest.raises(DistanceError):
            netflow_distance(x, x, multiplicities_x=np.array([1]))

"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.geometry.mesh import torus_mesh
from repro.io.stl import write_stl_binary


@pytest.fixture(scope="module")
def car_db(tmp_path_factory):
    """A small ingested database reused across CLI tests."""
    path = tmp_path_factory.mktemp("clidb") / "car.npz"
    code = main(
        ["ingest", "--dataset", "aircraft", "--n", "40", "--out", str(path)]
    )
    assert code == 0
    return path


class TestIngest:
    def test_ingest_car_subset(self, tmp_path, capsys):
        out = tmp_path / "db.npz"
        code = main(["ingest", "--dataset", "aircraft", "--n", "15", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "ingested 15 objects" in capsys.readouterr().out

    def test_ingest_mesh_directory(self, tmp_path, capsys):
        mesh_dir = tmp_path / "meshes"
        mesh_dir.mkdir()
        for index in range(3):
            write_stl_binary(
                torus_mesh(major_radius=1.0 + 0.1 * index, minor_radius=0.3),
                mesh_dir / f"part{index}.stl",
            )
        out = tmp_path / "meshes.npz"
        code = main(["ingest", "--meshes", str(mesh_dir), "--out", str(out)])
        assert code == 0
        assert "ingested 3 objects" in capsys.readouterr().out

    def test_ingest_empty_mesh_dir_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["ingest", "--meshes", str(empty), "--out", str(tmp_path / "x.npz")])
        assert code == 2

    def test_ingest_parallel_matches_serial(self, tmp_path):
        from repro.io.database import ObjectDatabase

        serial_path = tmp_path / "serial.npz"
        parallel_path = tmp_path / "parallel.npz"
        args = ["ingest", "--dataset", "aircraft", "--n", "10"]
        assert main(args + ["--out", str(serial_path), "--no-cache"]) == 0
        assert main(args + ["--out", str(parallel_path), "--jobs", "2",
                            "--no-cache"]) == 0
        serial = ObjectDatabase.load(serial_path)
        parallel = ObjectDatabase.load(parallel_path)
        assert serial.names() == parallel.names()

    def test_ingest_cache_warm_second_pass(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        args = ["ingest", "--dataset", "aircraft", "--n", "8"]
        assert main(args + ["--out", str(tmp_path / "a.npz")]) == 0
        assert "misses" in capsys.readouterr().out
        # Second pass over identical grids must be (nearly) all hits.
        code = main(
            args + ["--out", str(tmp_path / "b.npz"), "--assert-cache-hits", "90"]
        )
        assert code == 0
        assert "100.0% hit rate" in capsys.readouterr().out

    def test_assert_cache_hits_fails_cold(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            ["ingest", "--dataset", "aircraft", "--n", "6",
             "--out", str(tmp_path / "a.npz"), "--assert-cache-hits", "90"]
        )
        assert code == 1
        assert "below required" in capsys.readouterr().err


class TestQuery:
    def test_query_by_name(self, car_db, capsys):
        # Use whatever the first stored object is called.
        from repro.io.database import ObjectDatabase

        name = ObjectDatabase.load(car_db).names()[0]
        code = main(["query", str(car_db), "--name", name, "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert name in out
        assert "refined" in out

    def test_query_unknown_name_fails(self, car_db):
        assert main(["query", str(car_db), "--name", "warp-coil"]) == 2

    def test_query_by_mesh(self, car_db, tmp_path, capsys):
        mesh_path = tmp_path / "query.stl"
        write_stl_binary(torus_mesh(major_radius=1.0, minor_radius=0.3), mesh_path)
        code = main(["query", str(car_db), "--mesh", str(mesh_path), "-k", "2"])
        assert code == 0
        assert "distance" in capsys.readouterr().out

    def test_query_wrong_covers_fails(self, car_db):
        assert main(["query", str(car_db), "--name", "x", "--covers", "5"]) == 1


class TestClusterAndInfo:
    def test_cluster(self, car_db, capsys):
        code = main(["cluster", str(car_db), "--min-pts", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "cut at eps" in out

    def test_cluster_parallel_jobs(self, car_db, capsys):
        code = main(["cluster", str(car_db), "--min-pts", "3", "--jobs", "2"])
        assert code == 0
        assert "cut at eps" in capsys.readouterr().out

    def test_info(self, car_db, capsys):
        code = main(["info", str(car_db)])
        assert code == 0
        out = capsys.readouterr().out
        assert "objects:       40" in out
        assert "vector-set(k=7)" in out
        assert "feature cache:" in out


class TestExperiment:
    def test_fig5(self, capsys):
        code = main(["experiment", "fig5"])
        assert code == 0
        assert "reachability" in capsys.readouterr().out


class TestBench:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0
        assert "speedup" in capsys.readouterr().out
        records = json.loads(out.read_text())
        ops = {record["op"] for record in records}
        assert ops == {
            "pairwise_matrix",
            "knn_sequential",
            "match_many",
            "extract_single",
            "ingest_200",
        }
        for record in records:
            assert record["batched_seconds"] > 0
            assert record["per_pair_seconds"] > 0
            assert record["speedup"] > 0
            assert "label" not in record

    def test_label_is_stamped_into_records(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--label", "unit-test"]
        )
        assert code == 0
        records = json.loads(out.read_text())
        assert records and all(r["label"] == "unit-test" for r in records)

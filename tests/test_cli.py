"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.geometry.mesh import torus_mesh
from repro.io.stl import write_stl_binary


@pytest.fixture(scope="module")
def car_db(tmp_path_factory):
    """A small ingested database reused across CLI tests."""
    path = tmp_path_factory.mktemp("clidb") / "car.npz"
    code = main(
        ["ingest", "--dataset", "aircraft", "--n", "40", "--out", str(path)]
    )
    assert code == 0
    return path


class TestIngest:
    def test_ingest_car_subset(self, tmp_path, capsys):
        out = tmp_path / "db.npz"
        code = main(["ingest", "--dataset", "aircraft", "--n", "15", "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "ingested 15 objects" in capsys.readouterr().out

    def test_ingest_mesh_directory(self, tmp_path, capsys):
        mesh_dir = tmp_path / "meshes"
        mesh_dir.mkdir()
        for index in range(3):
            write_stl_binary(
                torus_mesh(major_radius=1.0 + 0.1 * index, minor_radius=0.3),
                mesh_dir / f"part{index}.stl",
            )
        out = tmp_path / "meshes.npz"
        code = main(["ingest", "--meshes", str(mesh_dir), "--out", str(out)])
        assert code == 0
        assert "ingested 3 objects" in capsys.readouterr().out

    def test_ingest_empty_mesh_dir_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["ingest", "--meshes", str(empty), "--out", str(tmp_path / "x.npz")])
        assert code == 2

    def test_ingest_parallel_matches_serial(self, tmp_path):
        from repro.io.database import ObjectDatabase

        serial_path = tmp_path / "serial.npz"
        parallel_path = tmp_path / "parallel.npz"
        args = ["ingest", "--dataset", "aircraft", "--n", "10"]
        assert main(args + ["--out", str(serial_path), "--no-cache"]) == 0
        assert main(args + ["--out", str(parallel_path), "--jobs", "2",
                            "--no-cache"]) == 0
        serial = ObjectDatabase.load(serial_path)
        parallel = ObjectDatabase.load(parallel_path)
        assert serial.names() == parallel.names()

    def test_ingest_cache_warm_second_pass(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        args = ["ingest", "--dataset", "aircraft", "--n", "8"]
        assert main(args + ["--out", str(tmp_path / "a.npz")]) == 0
        assert "misses" in capsys.readouterr().out
        # Second pass over identical grids must be (nearly) all hits.
        code = main(
            args + ["--out", str(tmp_path / "b.npz"), "--assert-cache-hits", "90"]
        )
        assert code == 0
        assert "100.0% hit rate" in capsys.readouterr().out

    def test_assert_cache_hits_fails_cold(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = main(
            ["ingest", "--dataset", "aircraft", "--n", "6",
             "--out", str(tmp_path / "a.npz"), "--assert-cache-hits", "90"]
        )
        assert code == 1
        assert "below required" in capsys.readouterr().err


class TestQuery:
    def test_query_by_name(self, car_db, capsys):
        # Use whatever the first stored object is called.
        from repro.io.database import ObjectDatabase

        name = ObjectDatabase.load(car_db).names()[0]
        code = main(["query", str(car_db), "--name", name, "-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert name in out
        assert "refined" in out

    def test_query_unknown_name_fails(self, car_db):
        assert main(["query", str(car_db), "--name", "warp-coil"]) == 2

    def test_query_by_mesh(self, car_db, tmp_path, capsys):
        mesh_path = tmp_path / "query.stl"
        write_stl_binary(torus_mesh(major_radius=1.0, minor_radius=0.3), mesh_path)
        code = main(["query", str(car_db), "--mesh", str(mesh_path), "-k", "2"])
        assert code == 0
        assert "distance" in capsys.readouterr().out

    def test_query_wrong_covers_fails(self, car_db):
        assert main(["query", str(car_db), "--name", "x", "--covers", "5"]) == 1


class TestClusterAndInfo:
    def test_cluster(self, car_db, capsys):
        code = main(["cluster", str(car_db), "--min-pts", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reachability" in out
        assert "cut at eps" in out

    def test_cluster_parallel_jobs(self, car_db, capsys):
        code = main(["cluster", str(car_db), "--min-pts", "3", "--jobs", "2"])
        assert code == 0
        assert "cut at eps" in capsys.readouterr().out

    def test_info(self, car_db, capsys):
        code = main(["info", str(car_db)])
        assert code == 0
        out = capsys.readouterr().out
        assert "objects:       40" in out
        assert "vector-set(k=7)" in out
        assert "feature cache:" in out


class TestExperiment:
    def test_fig5(self, capsys):
        code = main(["experiment", "fig5"])
        assert code == 0
        assert "reachability" in capsys.readouterr().out


class TestObservability:
    def test_query_writes_metrics_and_trace(self, car_db, tmp_path, capsys):
        import json

        from repro.io.database import ObjectDatabase

        name = ObjectDatabase.load(car_db).names()[0]
        metrics = tmp_path / "q.json"
        trace = tmp_path / "q.jsonl"
        code = main(
            ["query", str(car_db), "--name", name, "-k", "3",
             "--metrics", str(metrics), "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        snapshot = json.loads(metrics.read_text())
        # The emitted telemetry agrees exactly with what the command
        # printed: one query, selectivity/refinements from QueryStats.
        assert snapshot["counters"]["query.count"] == 1
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        query_events = [e for e in events if e["event"] == "query"]
        assert len(query_events) == 1
        refined = query_events[0]["exact_computations"]
        assert f"refined {refined}/" in out
        assert snapshot["counters"]["query.exact_computations"] == refined
        assert any(e["event"] == "span_start" for e in events)

    def test_stats_validates_and_reports(self, car_db, tmp_path, capsys):
        from repro.io.database import ObjectDatabase

        name = ObjectDatabase.load(car_db).names()[0]
        metrics = tmp_path / "q.json"
        trace = tmp_path / "q.jsonl"
        assert main(
            ["query", str(car_db), "--name", name,
             "--metrics", str(metrics), "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        code = main(["stats", "--metrics", str(metrics), "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "query.count" in out
        assert "OK" in out

    def test_stats_json_merges_snapshots(self, tmp_path, capsys):
        import json

        for index in range(2):
            (tmp_path / f"m{index}.json").write_text(
                json.dumps({"counters": {"query.count": 3}})
            )
        code = main(
            ["stats", "--json",
             "--metrics", str(tmp_path / "m0.json"), str(tmp_path / "m1.json")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["query.count"] == 6

    def test_stats_fails_on_malformed_trace(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"event": "span_start", "id": "1-1", "name": "lost"}) + "\n"
        )
        code = main(["stats", "--trace", str(bad)])
        assert code == 1
        assert "never closed" in capsys.readouterr().out

    def test_stats_without_inputs_is_usage_error(self, capsys):
        assert main(["stats"]) == 2
        assert "nothing to report" in capsys.readouterr().err

    def test_parallel_ingest_metrics_match_serial(self, tmp_path):
        """Satellite guarantee at the CLI level: ``--jobs 2`` reports the
        same ingest counter totals as a serial run."""
        import json

        args = ["ingest", "--dataset", "aircraft", "--n", "8", "--no-cache"]
        serial_metrics = tmp_path / "serial.json"
        parallel_metrics = tmp_path / "parallel.json"
        assert main(args + ["--out", str(tmp_path / "s.npz"),
                            "--metrics", str(serial_metrics)]) == 0
        assert main(args + ["--out", str(tmp_path / "p.npz"), "--jobs", "2",
                            "--metrics", str(parallel_metrics)]) == 0
        serial = json.loads(serial_metrics.read_text())["counters"]
        parallel = json.loads(parallel_metrics.read_text())["counters"]
        ingest_keys = {k for k in serial if k.startswith(("ingest.", "extract."))}
        assert ingest_keys
        for key in sorted(ingest_keys):
            assert serial[key] == parallel[key], key

    def test_obs_state_reset_between_runs(self, car_db, tmp_path, capsys):
        """A --metrics run must not leak an enabled registry into the
        next plain invocation (embedded callers, test isolation)."""
        import json

        from repro import obs
        from repro.io.database import ObjectDatabase

        name = ObjectDatabase.load(car_db).names()[0]
        metrics = tmp_path / "first.json"
        assert main(["query", str(car_db), "--name", name,
                     "--metrics", str(metrics)]) == 0
        assert not obs.enabled()
        assert main(["query", str(car_db), "--name", name]) == 0
        # The second (plain) run recorded nothing anywhere.
        assert obs.registry().snapshot()["counters"] == {}
        assert json.loads(metrics.read_text())["counters"]["query.count"] == 1


class TestBench:
    def test_quick_bench_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0
        assert "speedup" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-bench/1"
        assert payload["suite"] == "kernels"
        records = payload["records"]
        ops = {record["op"] for record in records}
        assert ops == {
            "pairwise_matrix",
            "knn_sequential",
            "match_many",
            "extract_single",
            "ingest_200",
        }
        for record in records:
            assert record["batched_seconds"] > 0
            assert record["per_pair_seconds"] > 0
            assert record["speedup"] > 0
            assert "label" not in record

    def test_bench_trace_records_span_per_leg(self, tmp_path):
        import json

        trace = tmp_path / "bench.jsonl"
        code = main(
            ["bench", "--quick", "--out", str(tmp_path / "bench.json"),
             "--trace", str(trace)]
        )
        assert code == 0
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {e["name"] for e in events if e["event"] == "span_start"}
        assert {"bench.pairwise_matrix.batched", "bench.match_many.per_pair"} <= names

    def test_label_is_stamped_into_records(self, tmp_path):
        import json

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--quick", "--out", str(out), "--label", "unit-test"]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        records = payload["records"]
        assert payload["label"] == "unit-test"
        assert records and all(r["label"] == "unit-test" for r in records)


class TestDbCommands:
    @pytest.fixture
    def mesh_dir(self, tmp_path):
        meshes = tmp_path / "meshes"
        meshes.mkdir()
        for index in range(3):
            write_stl_binary(
                torus_mesh(major_radius=1.0 + 0.2 * index, minor_radius=0.3),
                meshes / f"part{index}.stl",
            )
        return meshes

    def test_init_add_query_remove_compact(self, tmp_path, mesh_dir, capsys):
        db_path = tmp_path / "sim.db"
        assert main(["db", "init", str(db_path), "--covers", "5",
                     "--resolution", "12"]) == 0
        meshes = sorted(str(p) for p in mesh_dir.glob("*.stl"))
        assert main(["db", "add", str(db_path)] + meshes) == 0
        out = capsys.readouterr().out
        assert "3 objects" in out

        # query --snapshot answers without any rebuild: a mesh that is
        # already stored must come back at distance zero.
        assert main(["query", str(db_path), "--snapshot",
                     "--mesh", meshes[1], "-k", "3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        top = lines[1].split()
        assert top[0] == "1" and float(top[2]) == 0.0

        assert main(["db", "remove", str(db_path), "1"]) == 0
        assert main(["db", "remove", str(db_path), "1"]) == 2  # already gone
        assert main(["db", "compact", str(db_path)]) == 0
        capsys.readouterr()  # drop the remove/compact chatter
        assert main(["query", str(db_path), "--snapshot",
                     "--mesh", meshes[0], "-k", "2"]) == 0
        body = capsys.readouterr().out
        returned_ids = [
            line.split()[1]
            for line in body.splitlines()
            if line.strip() and line.split()[0].isdigit()
        ]
        assert returned_ids == ["0", "2"]  # object 1 was removed

    def test_snapshot_query_rejects_name_lookup(self, tmp_path, capsys):
        db_path = tmp_path / "sim.db"
        assert main(["db", "init", str(db_path)]) == 0
        code = main(["query", str(db_path), "--snapshot", "--name", "torus"])
        assert code == 2
        assert "by id" in capsys.readouterr().err

    def test_db_add_writes_metrics(self, tmp_path, mesh_dir):
        import json

        db_path = tmp_path / "sim.db"
        metrics = tmp_path / "m.json"
        assert main(["db", "init", str(db_path), "--resolution", "12"]) == 0
        mesh = str(next(iter(sorted(mesh_dir.glob("*.stl")))))
        assert main(["db", "add", str(db_path), mesh,
                     "--metrics", str(metrics)]) == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["db.mutations.add"] == 1
        assert snapshot["gauges"]["db.size"] == 1
        assert any(
            name.startswith("span.db.snapshot.save")
            for name in snapshot["histograms"]
        )

"""Tests for triangle meshes and the mesh primitive constructors."""

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.mesh import (
    TriangleMesh,
    box_mesh,
    cylinder_mesh,
    torus_mesh,
    uv_sphere_mesh,
)
from repro.geometry.transform import Transform


class TestTriangleMesh:
    def test_surface_area_of_unit_box(self):
        mesh = box_mesh(size=(1.0, 1.0, 1.0))
        assert mesh.surface_area() == pytest.approx(6.0)

    def test_bounds(self):
        mesh = box_mesh(center=(1.0, 2.0, 3.0), size=(2.0, 4.0, 6.0))
        lower, upper = mesh.bounds()
        assert np.allclose(lower, [0.0, 0.0, 0.0])
        assert np.allclose(upper, [2.0, 4.0, 6.0])

    def test_centroid_of_symmetric_box(self):
        mesh = box_mesh(center=(1.0, -1.0, 0.5))
        assert np.allclose(mesh.centroid(), [1.0, -1.0, 0.5])

    def test_transform_preserves_topology(self):
        mesh = box_mesh()
        moved = mesh.transformed(Transform.rotation("z", 0.3))
        assert moved.num_faces == mesh.num_faces
        assert moved.surface_area() == pytest.approx(mesh.surface_area())

    def test_scaling_scales_area_quadratically(self):
        mesh = box_mesh()
        assert mesh.scaled(2.0).surface_area() == pytest.approx(4 * mesh.surface_area())

    def test_merge_offsets_indices(self):
        a, b = box_mesh(), box_mesh(center=(5.0, 0.0, 0.0))
        merged = a.merged(b)
        assert merged.num_vertices == a.num_vertices + b.num_vertices
        assert merged.num_faces == a.num_faces + b.num_faces
        merged.validate()

    def test_face_index_out_of_range_rejected(self):
        with pytest.raises(GeometryError):
            TriangleMesh(np.zeros((2, 3)), np.array([[0, 1, 2]]))

    def test_degenerate_face_detection(self):
        vertices = np.array([[0, 0, 0], [1, 0, 0], [2, 0, 0], [0, 1, 0]], dtype=float)
        mesh = TriangleMesh(vertices, np.array([[0, 1, 2], [0, 1, 3]]))
        assert list(mesh.degenerate_faces()) == [0]
        with pytest.raises(GeometryError):
            mesh.validate()

    def test_nonfinite_vertices_rejected_by_validate(self):
        vertices = np.array([[0, 0, 0], [1, 0, 0], [np.nan, 1, 0]], dtype=float)
        mesh = TriangleMesh(vertices, np.array([[0, 1, 2]]))
        with pytest.raises(GeometryError):
            mesh.validate()


class TestPrimitiveMeshes:
    def test_sphere_area_approximates_analytic(self):
        mesh = uv_sphere_mesh(radius=1.0, rings=40, segments=80)
        assert mesh.surface_area() == pytest.approx(4 * np.pi, rel=0.01)

    def test_cylinder_area_approximates_analytic(self):
        mesh = cylinder_mesh(radius=1.0, height=2.0, segments=96)
        analytic = 2 * np.pi * 1.0 * 2.0 + 2 * np.pi  # side + two caps
        assert mesh.surface_area() == pytest.approx(analytic, rel=0.01)

    def test_torus_area_approximates_analytic(self):
        mesh = torus_mesh(major_radius=1.0, minor_radius=0.3, major_segments=60, minor_segments=30)
        analytic = 4 * np.pi**2 * 1.0 * 0.3
        assert mesh.surface_area() == pytest.approx(analytic, rel=0.02)

    @pytest.mark.parametrize(
        "factory",
        [box_mesh, uv_sphere_mesh, cylinder_mesh, torus_mesh],
        ids=["box", "sphere", "cylinder", "torus"],
    )
    def test_primitives_are_valid(self, factory):
        factory().validate()

    def test_sphere_parameter_validation(self):
        with pytest.raises(GeometryError):
            uv_sphere_mesh(radius=-1.0)
        with pytest.raises(GeometryError):
            uv_sphere_mesh(rings=1)

    def test_primitive_size_validation(self):
        with pytest.raises(GeometryError):
            box_mesh(size=(0.0, 1.0, 1.0))
        with pytest.raises(GeometryError):
            cylinder_mesh(segments=2)
        with pytest.raises(GeometryError):
            torus_mesh(minor_radius=0.0)

"""Sharded concurrency: scatter-gather answers pin one version vector.

The single-database concurrency contract (readers always observe a
consistent version) lifts to shards as: every scatter-gather query is
exact with respect to exactly one *version vector* — the tuple of
per-shard version counters captured while all shard read locks are
pinned.  The stress test runs one writer thread per shard (each
mutating only the oids its shard owns, publishing that shard's exact
membership before every mutation) against readers issuing 10-nn
queries through pinned views; each answer must equal the exact top-10
over the union of the per-shard memberships at the pinned vector.

Degradation is also part of the contract: a write lock stuck on ONE
shard makes scatter-gather time out (counted), while the healthy
shards keep answering direct queries.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.core.centroid import norm_weight
from repro.core.min_matching import min_matching_distance
from repro.db import ShardedSimilarityDatabase, shard_of
from repro.exceptions import LockTimeout

CAPACITY = 3
DIM = 3
SHARDS = 3


@pytest.fixture(autouse=True)
def clean_obs():
    obs.close_sink()
    obs.registry().reset()
    obs.disable()
    yield
    obs.close_sink()
    obs.registry().reset()
    obs.disable()


@pytest.mark.parametrize("backend", ["xtree", "scan"])
def test_scatter_gather_pins_a_version_vector(backend, rng):
    db = ShardedSimilarityDatabase(
        CAPACITY, shards=SHARDS, backend=backend, index_capacity=4
    )

    def rand_set():
        return rng.integers(
            -6, 7, size=(int(rng.integers(1, CAPACITY + 1)), DIM)
        ).astype(float)

    # Seed, then script each shard's writer independently.  oid pools
    # are disjoint by construction (filtered through shard_of), so every
    # mutation in shard i's script bumps exactly shard i's version:
    # per-shard histories compose into the global reference state for
    # ANY version vector a reader might pin.
    sets = {}
    for oid in range(18):
        sets[oid] = rand_set()
        db.add(oid, sets[oid])

    histories = []
    scripts = []
    next_oid = 18
    for i in range(SHARDS):
        shard = db.shards[i]
        live = {oid for oid in sets if shard_of(oid, SHARDS) == i}
        history = {shard.version: frozenset(live)}
        script = []
        for step in range(40):
            if step % 3 == 1 and len(live) > 2:
                victim = sorted(live)[step % len(live)]
                script.append(("remove", victim, None))
                live.discard(victim)
            else:
                while shard_of(next_oid, SHARDS) != i:
                    next_oid += 1
                arr = rand_set()
                script.append(("add", next_oid, arr))
                live.add(next_oid)
                sets[next_oid] = arr
                next_oid += 1
        histories.append(history)
        scripts.append(script)

    query = rand_set()
    weight = norm_weight(None)
    exact = {
        oid: min_matching_distance(query, arr, weight=weight)
        for oid, arr in sets.items()
    }

    errors = []
    done = [threading.Event() for _ in range(SHARDS)]

    def writer(i):
        try:
            shard = db.shards[i]
            history = histories[i]
            version = shard.version
            membership = set(history[version])
            for op, oid, arr in scripts[i]:
                if op == "add":
                    membership.add(oid)
                else:
                    membership.discard(oid)
                version += 1
                history[version] = frozenset(membership)
                if op == "add":
                    db.add(oid, arr)
                else:
                    assert db.remove(oid)
                time.sleep(0.0005)
        except Exception as exc:  # noqa: BLE001 - surfaced to the main thread
            errors.append(f"writer-{i}: {exc!r}")
        finally:
            done[i].set()

    def reader():
        try:
            while not all(flag.is_set() for flag in done):
                with db.read_views() as views:
                    vector = tuple(view.version for view in views)
                    results, _ = db._scatter_knn(views, query, 10, "exact", None)
                    assert (
                        tuple(view.version for view in views) == vector
                    ), "vector changed mid-pin"
                expected_ids = set()
                for i, version in enumerate(vector):
                    expected_ids |= histories[i][version]
                want = sorted(((exact[oid], oid) for oid in expected_ids))[:10]
                got = [(m.distance, m.object_id) for m in results]
                assert got == want, (
                    f"vector {vector}: got {got[:3]}..., want {want[:3]}..."
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(f"reader: {exc!r}")
            for flag in done:
                flag.set()

    readers = [threading.Thread(target=reader) for _ in range(3)]
    writers = [threading.Thread(target=writer, args=(i,)) for i in range(SHARDS)]
    for t in readers:
        t.start()
    for t in writers:
        t.start()
    for t in writers:
        t.join(timeout=120)
    for t in readers:
        t.join(timeout=120)
        assert not t.is_alive(), "reader hung"
    assert all(not t.is_alive() for t in writers), "writer hung"
    assert errors == []
    # All scripts ran: the final state is queryable and exact.
    final, _ = db.knn_query(query, 10)
    final_ids = set()
    for i, version in enumerate(db.version_vector()):
        final_ids |= histories[i][version]
    want = sorted(((exact[oid], oid) for oid in final_ids))[:10]
    assert [(m.distance, m.object_id) for m in final] == want


def test_cross_shard_writers_serialize(rng):
    """One writer thread per shard, disjoint oid pools: every mutation
    lands, and the version vector counts per-shard mutations exactly."""
    db = ShardedSimilarityDatabase(CAPACITY, shards=SHARDS, backend="rstar")
    pools = {i: [] for i in range(SHARDS)}
    for oid in range(120):
        pools[shard_of(oid, SHARDS)].append(oid)
    payloads = {
        oid: rng.integers(-6, 7, size=(1, DIM)).astype(float)
        for oid in range(120)
    }
    errors = []

    def add_pool(i):
        try:
            for oid in pools[i]:
                db.add(oid, payloads[oid])
        except Exception as exc:  # noqa: BLE001
            errors.append(repr(exc))

    threads = [threading.Thread(target=add_pool, args=(i,)) for i in range(SHARDS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive()
    assert errors == []
    assert len(db) == 120
    assert db.object_ids() == list(range(120))
    assert db.version_vector() == tuple(len(pools[i]) for i in range(SHARDS))


def test_one_stuck_shard_degrades_loudly(rng):
    """A wedged writer on one shard must not wedge the whole database
    silently: scatter-gather raises LockTimeout (and counts it), while
    the healthy shards still answer direct queries."""
    obs.enable()
    db = ShardedSimilarityDatabase(
        CAPACITY, shards=SHARDS, backend="xtree", lock_timeout=0.05
    )
    for oid in range(12):
        db.add(oid, rng.integers(-6, 7, size=(2, DIM)).astype(float))
    query = rng.integers(-6, 7, size=(1, DIM)).astype(float)
    baseline, _ = db.knn_query(query, 5)
    assert baseline

    hold = threading.Event()
    release = threading.Event()

    def wedge():
        with db.shards[1]._lock.write():
            hold.set()
            release.wait(timeout=30)

    wedger = threading.Thread(target=wedge)
    wedger.start()
    assert hold.wait(timeout=10)
    try:
        with pytest.raises(LockTimeout):
            db.knn_query(query, 5)
        assert obs.registry().counter("db.sharded.lock_timeouts").value >= 1
        # Healthy shards are individually still live.  Shard 0's own
        # ranking must lead with exactly the shard-0 members of the
        # global top-5 (anything better would have made the global cut).
        view_results, _ = db.shards[0].knn_query(query, 5)
        owned = [
            m.object_id
            for m in baseline
            if shard_of(m.object_id, SHARDS) == 0
        ]
        assert [m.object_id for m in view_results][: len(owned)] == owned
    finally:
        release.set()
        wedger.join(timeout=30)
    assert not wedger.is_alive()
    # Full scatter-gather recovers once the lock is released.
    after, _ = db.knn_query(query, 5)
    assert [(m.distance, m.object_id) for m in after] == [
        (m.distance, m.object_id) for m in baseline
    ]

"""Tests for beam cover search, ξ-cluster extraction, R*-tree deletion
and incremental ranking."""

import numpy as np
import pytest

from repro.clustering.optics import distance_rows_from_matrix, optics
from repro.clustering.xi import XiCluster, extract_xi_clusters, hierarchy_pairs
from repro.core.min_matching import min_matching_distance
from repro.core.queries import FilterRefineEngine
from repro.core.ranking import incremental_ranking
from repro.exceptions import FeatureError, ReproError
from repro.features.beam import all_box_gains, beam_cover_search
from repro.features.cover_sequence import extract_cover_sequence, max_sum_box
from repro.geometry.sdf import Box, Torus
from repro.index.rstar import RStarTree
from repro.voxel.voxelize import voxelize_solid
from tests.conftest import random_vector_sets


class TestAllBoxGains:
    def test_top_one_matches_max_sum_box(self, rng):
        for _ in range(10):
            weights = rng.normal(size=(5, 5, 5))
            best, lower, upper = max_sum_box(weights)
            if best <= 0:
                continue
            gains = all_box_gains(weights, 1)
            assert gains[0][0] == pytest.approx(best)

    def test_sorted_descending_positive(self, rng):
        weights = rng.normal(size=(4, 4, 4))
        gains = [g for g, _, _ in all_box_gains(weights, 20)]
        assert gains == sorted(gains, reverse=True)
        assert all(g > 0 for g in gains)

    def test_gain_realization(self, rng):
        weights = rng.normal(size=(5, 4, 3))
        for gain, lower, upper in all_box_gains(weights, 5):
            realized = weights[
                lower[0] : upper[0] + 1, lower[1] : upper[1] + 1, lower[2] : upper[2] + 1
            ].sum()
            assert realized == pytest.approx(gain)

    def test_validation(self):
        with pytest.raises(FeatureError):
            all_box_gains(np.zeros((3, 3)), 1)
        with pytest.raises(FeatureError):
            all_box_gains(np.zeros((3, 3, 3)), 0)


class TestBeamSearch:
    def test_width_one_single_candidate_equals_greedy(self, tire_grid):
        greedy = extract_cover_sequence(tire_grid, k=5)
        beam = beam_cover_search(tire_grid, k=5, beam_width=1, candidates_per_sign=1)
        assert beam.final_error == greedy.final_error
        assert [c.sign for c in beam.covers] == [c.sign for c in greedy.covers]

    def test_never_worse_than_greedy(self, rng):
        from repro.datasets.parts import make_part

        for family in ("tire", "door", "engine_block", "wing"):
            grid = voxelize_solid(make_part(family, rng, place=False).solid, 12)
            greedy = extract_cover_sequence(grid, k=4)
            beam = beam_cover_search(grid, k=4, beam_width=4, candidates_per_sign=3)
            assert beam.final_error <= greedy.final_error, family

    def test_beam_can_beat_greedy(self):
        """A shape engineered so the greedy first pick is suboptimal:
        the best single box overlaps both arms, but the optimal 2-cover
        solution uses the two arms separately."""
        # Cross of two perpendicular bars: greedy k=2 leaves error, a
        # wider beam can find the exact decomposition for k=3.
        cross = Box(size=(2.0, 0.6, 0.4)) | Box(size=(0.6, 2.0, 0.4))
        grid = voxelize_solid(cross, resolution=12, supersample=1)
        greedy = extract_cover_sequence(grid, k=2)
        beam = beam_cover_search(grid, k=2, beam_width=6, candidates_per_sign=6)
        assert beam.final_error <= greedy.final_error

    def test_feature_compatibility(self, tire_grid):
        """Beam results are ordinary CoverSequences usable downstream."""
        beam = beam_cover_search(tire_grid, k=5, beam_width=3)
        rows = beam.feature_vectors()
        assert rows.shape[1] == 6
        assert (beam.approximation() ^ tire_grid.occupancy).sum() == beam.final_error

    def test_validation(self, tire_grid):
        with pytest.raises(FeatureError):
            beam_cover_search(tire_grid, k=0)
        with pytest.raises(FeatureError):
            beam_cover_search(tire_grid, k=3, beam_width=0)


class TestXiExtraction:
    @staticmethod
    def _nested_ordering():
        """A synthetic reachability plot with a cluster hierarchy:
        positions 1-40 form a supercluster at level ~0.5 containing two
        subclusters at ~0.1."""
        values = np.full(60, 2.0)
        values[0] = np.inf
        values[1:41] = 0.5
        values[5:20] = 0.1
        values[25:40] = 0.1
        return optics_like(values)

    def test_hierarchy_found(self):
        ordering = self._nested_ordering()
        clusters = extract_xi_clusters(ordering, xi=0.3, min_cluster_size=4)
        assert clusters, "no clusters extracted"
        pairs = hierarchy_pairs(clusters)
        assert pairs, "no nesting found"
        parent, child = pairs[0]
        assert parent.size > child.size

    def test_flat_plot_has_no_clusters(self):
        values = np.full(30, 1.0)
        values[0] = np.inf
        ordering = optics_like(values)
        assert extract_xi_clusters(ordering, xi=0.1) == []

    def test_real_blobs(self, rng):
        points = np.vstack(
            [rng.normal(loc=c, scale=0.05, size=(30, 2)) for c in ((0, 0), (2, 2))]
        )
        diff = points[:, np.newaxis, :] - points[np.newaxis, :, :]
        matrix = np.sqrt((diff * diff).sum(axis=2))
        ordering = optics(len(points), distance_rows_from_matrix(matrix), min_pts=4)
        clusters = extract_xi_clusters(ordering, xi=0.2, min_cluster_size=10)
        assert len(clusters) >= 1
        # Every extracted cluster is label-pure (the blobs are far apart).
        for cluster in clusters:
            labels = {0 if obj < 30 else 1 for obj in cluster.objects}
            assert len(labels) == 1

    def test_validation(self):
        ordering = optics_like(np.ones(10))
        with pytest.raises(ReproError):
            extract_xi_clusters(ordering, xi=0.0)
        with pytest.raises(ReproError):
            extract_xi_clusters(ordering, min_cluster_size=1)


def optics_like(values: np.ndarray):
    """Wrap a raw reachability array into a ClusterOrdering."""
    from repro.clustering.optics import ClusterOrdering

    n = len(values)
    return ClusterOrdering(
        order=np.arange(n),
        reachability=np.asarray(values, dtype=float),
        core_distances=np.zeros(n),
    )


class TestDeletion:
    def test_delete_and_requery(self, rng):
        points = rng.random(size=(400, 3))
        tree = RStarTree(3)
        for i, point in enumerate(points):
            tree.insert(point, i)
        removed = set()
        for i in range(0, 400, 3):
            assert tree.delete(points[i], i)
            removed.add(i)
        tree.validate()
        assert tree.size == 400 - len(removed)
        query = rng.random(3)
        survivors = [i for i in range(400) if i not in removed]
        brute = sorted(survivors, key=lambda i: (np.linalg.norm(points[i] - query), i))[:5]
        assert [oid for oid, _ in tree.knn(query, 5)] == brute

    def test_delete_missing_returns_false(self, rng):
        tree = RStarTree(3)
        tree.insert(np.zeros(3), 0)
        assert not tree.delete(np.ones(3), 0)
        assert not tree.delete(np.zeros(3), 99)
        assert tree.size == 1

    def test_delete_everything(self, rng):
        points = rng.random(size=(60, 2))
        tree = RStarTree(2)
        for i, point in enumerate(points):
            tree.insert(point, i)
        for i, point in enumerate(points):
            assert tree.delete(point, i)
        assert tree.size == 0
        assert tree.range_search(np.array([0.5, 0.5]), 10.0) == []

    def test_interleaved_insert_delete(self, rng):
        tree = RStarTree(2)
        alive = {}
        next_id = 0
        for _ in range(500):
            if alive and rng.random() < 0.4:
                oid = list(alive)[int(rng.integers(len(alive)))]
                assert tree.delete(alive.pop(oid), oid)
            else:
                point = rng.random(2)
                tree.insert(point, next_id)
                alive[next_id] = point
                next_id += 1
        tree.validate()
        assert tree.size == len(alive)


class TestIncrementalRanking:
    def test_yields_ascending_exact_distances(self, rng):
        sets = random_vector_sets(rng, 80)
        engine = FilterRefineEngine(sets, capacity=7)
        query = rng.normal(size=(3, 6))
        stream = list(incremental_ranking(engine, query))
        assert len(stream) == 80
        distances = [d for _, d in stream]
        assert distances == sorted(distances)

    def test_matches_brute_force_order(self, rng):
        sets = random_vector_sets(rng, 60)
        engine = FilterRefineEngine(sets, capacity=7)
        query = rng.normal(size=(4, 6))
        stream = [oid for oid, _ in incremental_ranking(engine, query)]
        brute = sorted(
            range(60), key=lambda i: (min_matching_distance(query, sets[i]), i)
        )
        # Ties may permute; compare distances instead of ids.
        got = [min_matching_distance(query, sets[i]) for i in stream]
        want = [min_matching_distance(query, sets[i]) for i in brute]
        assert got == pytest.approx(want)

    def test_lazy_refinement(self, rng):
        """Consuming only the first results must not refine everything."""
        cluster_a = [rng.normal(size=(3, 6)) * 0.1 for _ in range(40)]
        cluster_b = [rng.normal(size=(3, 6)) * 0.1 + 50.0 for _ in range(40)]
        engine = FilterRefineEngine(cluster_a + cluster_b, capacity=7)
        calls = []
        original = engine._exact

        def counting(a, b):
            calls.append(1)
            return original(a, b)

        engine._exact = counting
        stream = incremental_ranking(engine, cluster_a[0])
        for _ in range(5):
            next(stream)
        assert len(calls) < 60  # far-cluster objects were not refined

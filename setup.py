"""Setuptools shim: enables legacy editable installs in environments
without the `wheel` package (modern builds use pyproject.toml)."""

from setuptools import setup

setup()
